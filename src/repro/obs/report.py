"""Structured run reports: serialize what a training run did and saw.

A :class:`RunReport` captures one training run end to end — the exact
configuration, the dataset shape, every epoch's losses/timings/metrics,
the per-layer forward/backward profile (when hooks were enabled), the
timer-registry snapshot, and the final evaluation metrics — as a
schema-versioned, JSON-round-trippable document.  The CLI writes it via
``python -m repro train --report-json out.json``; benchmarks write their
sibling artifact via :func:`write_bench_artifact` so the repository
accumulates a machine-readable performance trajectory under
``benchmarks/out/``.

The JSON schema is stable: fields are only added, never renamed or
removed, and ``schema_version`` is bumped on additions so downstream
tooling can branch on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bumped whenever a field is added to :class:`RunReport` or the bench
#: artifact layout.  Consumers should accept any version >= the one they
#: were written against (fields are append-only).
#:
#: * v1 — config/dataset/history/layers/timers/eval_metrics/model/
#:   backward/meta.
#: * v2 — adds ``health`` (monitor summaries + alerts, see
#:   :class:`repro.obs.HealthSuite`) and ``metrics``
#:   (:meth:`repro.obs.MetricsRegistry.snapshot`); bench artifacts gain
#:   a ``metrics`` section.  v1 documents still load
#:   (:meth:`RunReport.load` defaults the new sections to empty).
SCHEMA_VERSION = 2


def _utc_now() -> str:
    """ISO-8601 UTC timestamp (second resolution)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class RunReport:
    """Everything observable about one training run, JSON-serializable.

    Attributes
    ----------
    config:
        The exact hyper-parameter dict the run used
        (``dataclasses.asdict(RRREConfig)``).
    dataset:
        Dataset identity and shape (name, users, items, reviews, ...).
    history:
        One dict per epoch (``repro.core.EpochRecord`` fields: losses,
        wall seconds, gradient norm, eval metrics).
    layers:
        Per-layer profile dicts from
        :meth:`repro.obs.ModuleProfiler.layer_profiles` — empty when
        hooks were disabled.
    timers:
        :meth:`repro.obs.TimerRegistry.snapshot` of the run's phases.
    eval_metrics:
        Final evaluation metrics (last epoch's, or a dedicated pass).
    model:
        Parameter accounting (total count, per-component breakdown).
    backward:
        Tape statistics (passes, cumulative seconds, total nodes) when
        graph stats were enabled.
    health:
        :meth:`repro.obs.HealthSuite.report` output — overall status,
        per-monitor summaries, and the alert list (schema v2; empty for
        v1 reports).
    metrics:
        :meth:`repro.obs.MetricsRegistry.snapshot` of the run's metric
        families (schema v2; empty for v1 reports).
    meta:
        Free-form context: dataset seed, CLI argv, library version.
    """

    config: Dict[str, Any] = field(default_factory=dict)
    dataset: Dict[str, Any] = field(default_factory=dict)
    history: List[Dict[str, Any]] = field(default_factory=list)
    layers: List[Dict[str, Any]] = field(default_factory=list)
    timers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    eval_metrics: Dict[str, float] = field(default_factory=dict)
    model: Dict[str, Any] = field(default_factory=dict)
    backward: Dict[str, Any] = field(default_factory=dict)
    health: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    created: str = field(default_factory=_utc_now)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view with a stable key order."""
        return {
            "schema_version": self.schema_version,
            "created": self.created,
            "config": self.config,
            "dataset": self.dataset,
            "model": self.model,
            "history": self.history,
            "layers": self.layers,
            "timers": self.timers,
            "backward": self.backward,
            "eval_metrics": self.eval_metrics,
            "health": self.health,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path) -> Path:
        """Write the JSON report to ``path`` (parents created); returns it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        Backward compatible across schema versions: a v1 document (no
        ``health``/``metrics`` sections) loads with those sections
        empty, keeping its original ``schema_version``.
        """
        return cls(
            config=dict(payload.get("config", {})),
            dataset=dict(payload.get("dataset", {})),
            history=list(payload.get("history", [])),
            layers=list(payload.get("layers", [])),
            timers=dict(payload.get("timers", {})),
            eval_metrics=dict(payload.get("eval_metrics", {})),
            model=dict(payload.get("model", {})),
            backward=dict(payload.get("backward", {})),
            health=dict(payload.get("health", {})),
            metrics=dict(payload.get("metrics", {})),
            meta=dict(payload.get("meta", {})),
            schema_version=int(payload.get("schema_version", SCHEMA_VERSION)),
            created=str(payload.get("created", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "RunReport":
        """Read a report written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- rendering -----------------------------------------------------
    def render(self, top_layers: int = 12) -> str:
        """Human-readable text report for terminals and logs."""
        lines: List[str] = []
        name = self.dataset.get("name", "?")
        lines.append(f"Run report — dataset={name}  created={self.created}")
        lines.append("=" * max(40, len(lines[0])))

        if self.dataset:
            shape = "  ".join(
                f"{key}={self.dataset[key]}"
                for key in ("users", "items", "reviews", "fake_fraction")
                if key in self.dataset
            )
            if shape:
                lines.append(f"dataset: {shape}")
        if self.model:
            parts = [f"parameters={self.model.get('parameters', '?')}"]
            components = self.model.get("components", {})
            if components:
                top = sorted(components.items(), key=lambda kv: -kv[1])[:4]
                parts.append(
                    "largest: " + ", ".join(f"{k}={v}" for k, v in top)
                )
            lines.append("model:   " + "  ".join(parts))
        if self.config:
            keys = (
                "encoder", "pooling", "review_dim", "word_dim", "id_dim",
                "s_u", "s_i", "epochs", "batch_size", "lr", "lambda_weight",
            )
            shown = "  ".join(
                f"{k}={self.config[k]}" for k in keys if k in self.config
            )
            lines.append(f"config:  {shown}")

        if self.history:
            lines.append("")
            lines.append(
                "epoch     loss    rel_loss  rating    sec   grad_norm  metrics"
            )
            lines.append("-" * 72)
            for rec in self.history:
                metrics = rec.get("eval_metrics") or {}
                metric_text = " ".join(f"{k}={v:.4f}" for k, v in metrics.items())
                lines.append(
                    f"{rec.get('epoch', '?'):>5}"
                    f"  {rec.get('train_loss', float('nan')):>8.4f}"
                    f"  {rec.get('reliability_loss', float('nan')):>8.4f}"
                    f"  {rec.get('rating_loss', float('nan')):>8.4f}"
                    f"  {rec.get('seconds', float('nan')):>5.1f}"
                    f"  {rec.get('grad_norm', 0.0):>9.3f}"
                    f"  {metric_text}"
                )
            losses = [r["train_loss"] for r in self.history if "train_loss" in r]
            if len(losses) > 1:
                lines.append("loss curve: " + _sparkline(losses))

        if self.layers:
            lines.append("")
            lines.append(_render_layer_table(self.layers, top_layers))

        if self.backward:
            lines.append("")
            lines.append(
                "backward: passes={passes}  seconds={seconds:.3f}  tape_nodes={tape_nodes}".format(
                    passes=self.backward.get("passes", 0),
                    seconds=self.backward.get("seconds", 0.0),
                    tape_nodes=self.backward.get("tape_nodes", 0),
                )
            )
        if self.eval_metrics:
            lines.append("")
            lines.append(
                "final metrics: "
                + "  ".join(f"{k}={v:.4f}" for k, v in self.eval_metrics.items())
            )
        if self.health:
            lines.append("")
            lines.append(_render_health(self.health))
        return "\n".join(lines)


def _render_layer_table(layers: List[Dict[str, Any]], top: int) -> str:
    """Fixed-width per-layer profile table (top-N by forward time)."""
    width = max([len(str(l.get("name", ""))) for l in layers[:top]] + [10]) + 2
    header = (
        "layer".ljust(width)
        + "calls".rjust(7)
        + "fwd s".rjust(9)
        + "bwd s".rjust(9)
        + "grad|g|".rjust(10)
        + "params".rjust(10)
    )
    lines = [header, "-" * len(header)]
    for layer in layers[:top]:
        lines.append(
            str(layer.get("name", "")).ljust(width)
            + f"{layer.get('calls', 0):>7}"
            + f"{layer.get('forward_seconds', 0.0):>9.3f}"
            + f"{layer.get('backward_seconds', 0.0):>9.3f}"
            + f"{layer.get('grad_norm_mean', 0.0):>10.3f}"
            + f"{layer.get('parameters', 0):>10}"
        )
    if len(layers) > top:
        lines.append(f"... {len(layers) - top} more layers (see JSON report)")
    return "\n".join(lines)


def _render_health(health: Dict[str, Any]) -> str:
    """Health section: overall status, per-monitor one-liners, alerts."""
    lines = [f"health: {health.get('status', '?')}"]
    for name, summary in health.get("monitors", {}).items():
        last = summary.get("last_value")
        last_text = f"{last:.4f}" if isinstance(last, (int, float)) else "-"
        lines.append(
            f"  {name:20s} {summary.get('status', '?'):8s} "
            f"obs={summary.get('observations', 0):<4} last={last_text}"
        )
    for alert in health.get("alerts", []):
        lines.append(
            f"  [{alert.get('severity', '?')}] epoch {alert.get('epoch', '?')} "
            f"{alert.get('monitor', '?')}: {alert.get('message', '')}"
        )
    return "\n".join(lines)


def _sparkline(values: List[float]) -> str:
    """Local sparkline (kept import-free; mirrors repro.eval.reporting)."""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


# ---------------------------------------------------------------------------
# Benchmark artifacts
# ---------------------------------------------------------------------------


def write_bench_artifact(
    out_dir,
    name: str,
    data: Dict[str, Any],
    timing: Optional[Dict[str, float]] = None,
    params: Optional[Dict[str, Any]] = None,
    rendered: str = "",
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one benchmark's results as ``<out_dir>/BENCH_<name>.json``.

    The artifact is a trajectory point: future sessions diff these files
    to see whether a table regenerated with the same numbers and how
    long it took.  Returns the written path.

    Parameters
    ----------
    out_dir:
        Target directory (created if missing), normally ``benchmarks/out``.
    name:
        Benchmark identifier, e.g. ``table3`` or ``test_fig2``.
    data:
        The raw numbers of the regenerated artifact
        (``ExperimentReport.data``); must be JSON-serializable.
    timing:
        Optional wall-time stats, e.g. ``{"seconds": 12.3}``.
    params:
        The scale/seeds/epochs knobs the run used.
    rendered:
        Optional printable table, stored for eyeballing diffs.
    metrics:
        Optional :meth:`repro.obs.MetricsRegistry.snapshot` collected
        while the benchmark ran (schema v2).
    """
    safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in name)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "created": _utc_now(),
        "params": params or {},
        "timing": timing or {},
        "data": _jsonable(data),
        "rendered": rendered,
        "metrics": _jsonable(metrics or {}),
    }
    target = Path(out_dir) / f"BENCH_{safe}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of numpy scalars/arrays for json.dumps."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

#: ``section name -> required python type`` for a RunReport document.
_REPORT_SECTIONS = {
    "config": dict,
    "dataset": dict,
    "model": dict,
    "history": list,
    "layers": list,
    "timers": dict,
    "backward": dict,
    "eval_metrics": dict,
    "meta": dict,
}

#: Sections added in schema v2 (optional for v1 documents).
_REPORT_V2_SECTIONS = {"health": dict, "metrics": dict}

#: Required keys of a ``BENCH_*.json`` artifact and their types.
_BENCH_KEYS = {
    "benchmark": str,
    "params": dict,
    "timing": dict,
    "data": (dict, list),
    "rendered": str,
}


def _check_version(payload: Dict[str, Any], problems: List[str]) -> int:
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 1:
        problems.append(f"schema_version must be a positive int, got {version!r}")
        return 0
    return version


#: Required keys of the ``concurrency`` pass inside an analyze report.
_CONCURRENCY_KEYS = {
    "ok": bool,
    "files_checked": int,
    "violations": list,
    "models": dict,
}


def _validate_analyze_report(payload: Dict[str, Any]) -> List[str]:
    """Structural check of an ``analyze --report-json`` document."""
    problems: List[str] = []
    _check_version(payload, problems)
    if not isinstance(payload.get("ok"), bool):
        problems.append("analyze report needs a boolean 'ok'")
    if not isinstance(payload.get("failed_passes"), list):
        problems.append("analyze report needs a 'failed_passes' list")
    passes = payload.get("passes")
    if not isinstance(passes, dict):
        return problems + ["analyze report needs a 'passes' object"]
    concurrency = passes.get("concurrency")
    if concurrency is None:
        return problems
    if not isinstance(concurrency, dict):
        return problems + ["passes.concurrency must be an object"]
    for key, expected in _CONCURRENCY_KEYS.items():
        if key not in concurrency:
            problems.append(f"passes.concurrency missing key {key!r}")
        elif not isinstance(concurrency[key], expected):
            problems.append(
                f"passes.concurrency.{key} must be {expected.__name__}, "
                f"got {type(concurrency[key]).__name__}"
            )
    violations = concurrency.get("violations")
    for i, violation in enumerate(violations if isinstance(violations, list) else []):
        if not isinstance(violation, dict) or not {
            "rule",
            "path",
            "line",
        } <= set(violation):
            problems.append(
                f"passes.concurrency.violations[{i}] must be an object "
                "with rule/path/line"
            )
    dynamic = concurrency.get("dynamic")
    if dynamic is not None:
        if not isinstance(dynamic, dict):
            problems.append("passes.concurrency.dynamic must be an object")
        else:
            if not isinstance(dynamic.get("ok"), bool):
                problems.append("passes.concurrency.dynamic needs a boolean 'ok'")
            if not isinstance(dynamic.get("races"), list):
                problems.append("passes.concurrency.dynamic needs a 'races' list")
            if not isinstance(dynamic.get("self_check"), dict):
                problems.append(
                    "passes.concurrency.dynamic needs a 'self_check' object"
                )
    return problems


def validate_report(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a RunReport JSON document.

    Returns a list of problems (empty = valid).  Accepts any schema
    version >= 1; v2-only sections are required only from v2 on.  An
    ``analyze --report-json`` payload (recognized by its ``passes``
    section and the absence of a training ``history``) is validated
    against the analyze schema instead, including the ``concurrency``
    pass structure.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report must be a JSON object, got {type(payload).__name__}"]
    if "passes" in payload and "history" not in payload:
        return _validate_analyze_report(payload)
    version = _check_version(payload, problems)
    required = dict(_REPORT_SECTIONS)
    if version >= 2:
        required.update(_REPORT_V2_SECTIONS)
    for key, expected in required.items():
        if key not in payload:
            problems.append(f"missing section {key!r}")
        elif not isinstance(payload[key], expected):
            problems.append(
                f"section {key!r} must be {expected.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    for i, record in enumerate(payload.get("history", []) or []):
        if not isinstance(record, dict):
            problems.append(f"history[{i}] must be an object")
    return problems


def validate_bench_artifact(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a ``BENCH_*.json`` artifact.

    Returns a list of problems (empty = valid).  The ``metrics`` section
    is required from schema v2 on, tolerated as absent in v1 artifacts.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"artifact must be a JSON object, got {type(payload).__name__}"]
    version = _check_version(payload, problems)
    for key, expected in _BENCH_KEYS.items():
        if key not in payload:
            problems.append(f"missing key {key!r}")
        elif not isinstance(payload[key], expected):
            expected_name = (
                expected.__name__
                if isinstance(expected, type)
                else "/".join(t.__name__ for t in expected)
            )
            problems.append(
                f"key {key!r} must be {expected_name}, "
                f"got {type(payload[key]).__name__}"
            )
    if version >= 2 and not isinstance(payload.get("metrics"), dict):
        problems.append("v2 artifact must carry a 'metrics' object")
    return problems
