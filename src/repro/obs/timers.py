"""Hierarchical wall-clock timers and counters for profiling.

A :class:`TimerRegistry` accumulates named timing scopes into dotted
paths (``fit.epoch.train``), tracking cumulative, min/max, and
exponential-moving-average statistics per path.  Scopes nest per thread:
entering ``registry.timer("train")`` inside ``registry.timer("epoch")``
records under ``epoch.train``.

Design goals:

* **Low overhead** — entering/leaving a scope is two ``perf_counter``
  calls, one list append/pop, and one dict update under a lock.
* **Thread safety** — the nesting stack is thread-local, the statistics
  table is lock-protected, so parallel evaluators can share a registry.
* **Zero cost when unused** — nothing in this module is touched unless a
  registry is explicitly created and used.

Typical use::

    registry = TimerRegistry()
    with registry.timer("fit"):
        with registry.timer("epoch"):
            ...
    registry.snapshot()["fit.epoch"]["total"]
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, Dict, List, Optional

from ..analysis.concurrency.locks import make_lock


class TimerStat:
    """Running statistics for one timing path (or counter).

    Attributes
    ----------
    count:
        Number of completed observations.
    total:
        Cumulative seconds (or counted units).
    ema:
        Exponential moving average of individual observations.
    minimum / maximum:
        Extremes over all observations.
    last:
        The most recent observation.
    """

    __slots__ = ("count", "total", "ema", "minimum", "maximum", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.ema = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.last = 0.0

    def update(self, value: float, ema_alpha: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        self.total += value
        self.last = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self.count == 1:
            self.ema = value
        else:
            self.ema += ema_alpha * (value - self.ema)

    @property
    def mean(self) -> float:
        """Arithmetic mean over all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict view used by :meth:`TimerRegistry.snapshot`."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "ema": self.ema,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "last": self.last,
        }


class _Scope:
    """Context manager produced by :meth:`TimerRegistry.timer`."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "TimerRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Scope":
        self._registry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry._pop(elapsed)


class TimerRegistry:
    """Thread-safe registry of nested timing scopes and counters.

    Parameters
    ----------
    ema_alpha:
        Smoothing factor of the per-path exponential moving average
        (higher → more weight on recent observations).
    """

    def __init__(self, ema_alpha: float = 0.2) -> None:
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        self.ema_alpha = ema_alpha
        self._lock = make_lock("obs.timers")
        self._stats: Dict[str, TimerStat] = {}
        self._local = threading.local()

    # -- nesting -------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, name: str) -> None:
        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"invalid timer name {name!r}")
        stack = self._stack()
        path = f"{stack[-1]}.{name}" if stack else name
        stack.append(path)

    def _pop(self, elapsed: float) -> None:
        path = self._stack().pop()
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = TimerStat()
            stat.update(elapsed, self.ema_alpha)

    # -- public API ----------------------------------------------------
    def timer(self, name: str) -> _Scope:
        """Return a context manager timing ``name`` under the current scope."""
        return _Scope(self, name)

    def timed(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`timer` (defaults to the function name)."""

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__name__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.timer(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def count(self, name: str, value: float = 1.0) -> None:
        """Record a counter observation under the current scope."""
        stack = self._stack()
        path = f"{stack[-1]}.{name}" if stack else name
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = TimerStat()
            stat.update(value, self.ema_alpha)

    def get(self, path: str) -> TimerStat:
        """Return the statistics object for an absolute dotted ``path``."""
        with self._lock:
            if path not in self._stats:
                raise KeyError(f"no timer recorded under {path!r}")
            return self._stats[path]

    def paths(self) -> List[str]:
        """All recorded dotted paths, sorted."""
        with self._lock:
            return sorted(self._stats)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Return ``{path: stats_dict}`` — JSON-serializable, copied."""
        with self._lock:
            return {path: stat.to_dict() for path, stat in sorted(self._stats.items())}

    def reset(self) -> None:
        """Drop all accumulated statistics (nesting stacks are untouched)."""
        with self._lock:
            self._stats.clear()


#: Process-wide default registry for ad-hoc instrumentation.
GLOBAL_REGISTRY = TimerRegistry()


def get_registry() -> TimerRegistry:
    """Return the process-wide default :class:`TimerRegistry`."""
    return GLOBAL_REGISTRY
