"""Thresholded model-health monitors: catch silent training degradation.

The failure mode RRRE guards against in *data* — fake reviews polluting
the signal — has training-time analogues that a loss curve alone hides:
the reliability head collapsing to the majority class while the joint
loss still falls, fraud-attention degenerating to uniform (or one-hot)
weights so explanations stop being review-specific, units dying behind
a saturated nonlinearity, or gradients drifting away from their running
scale long before they explode.  Each monitor here watches one of those
signals per epoch and raises a :class:`HealthAlert` when a threshold is
crossed:

* :class:`GradientDriftMonitor` — per-epoch global gradient norm vs. an
  exponential-moving-average baseline; alerts on drift beyond a ratio
  (and critically on non-finite norms);
* :class:`DeadUnitMonitor` — per-layer dead-unit and saturation
  fractions from :class:`repro.obs.ModuleProfiler` activation stats;
* :class:`AttentionEntropyMonitor` — mean entropy of the fraud-attention
  weights, normalized by the maximum possible entropy; alerts on
  collapse toward a degenerate distribution;
* :class:`CalibrationDriftMonitor` — per-epoch expected calibration
  error (ECE) of the reliability probabilities vs. the best value seen,
  the "explanation quality drifts independently of rating accuracy"
  signal from the faithfulness literature.

A :class:`HealthSuite` owns one of each, collects alerts across the
run, and renders the ``health`` section of a
:class:`repro.obs.RunReport` (schema v2).  All monitors are pure
observers: they never change training behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "AttentionEntropyMonitor",
    "CalibrationDriftMonitor",
    "DeadUnitMonitor",
    "GradientDriftMonitor",
    "HealthAlert",
    "HealthMonitor",
    "HealthSuite",
    "attention_entropy",
]


@dataclass(frozen=True)
class HealthAlert:
    """One threshold crossing observed by a monitor."""

    monitor: str
    severity: str  # "warn" | "critical"
    epoch: int
    message: str
    value: float
    threshold: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (stored in ``RunReport.health``)."""
        return {
            "monitor": self.monitor,
            "severity": self.severity,
            "epoch": self.epoch,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
        }


class HealthMonitor:
    """Base class: alert bookkeeping shared by all monitors."""

    name = "monitor"

    def __init__(self) -> None:
        self.alerts: List[HealthAlert] = []
        self.observations = 0
        self.last_value = float("nan")

    def _record(self, epoch: int, value: float) -> None:
        self.observations += 1
        self.last_value = float(value)

    def _alert(
        self, severity: str, epoch: int, message: str, value: float, threshold: float
    ) -> HealthAlert:
        alert = HealthAlert(
            monitor=self.name,
            severity=severity,
            epoch=epoch,
            message=message,
            value=float(value),
            threshold=float(threshold),
        )
        self.alerts.append(alert)
        return alert

    @property
    def status(self) -> str:
        """``"ok"``, or the worst severity this monitor has raised."""
        if any(a.severity == "critical" for a in self.alerts):
            return "critical"
        if self.alerts:
            return "warn"
        return "ok"

    def summary(self) -> Dict[str, Any]:
        """Per-monitor entry of the report's ``health`` section."""
        return {
            "status": self.status,
            "observations": self.observations,
            "last_value": None if math.isnan(self.last_value) else self.last_value,
            "alerts": len(self.alerts),
        }


class GradientDriftMonitor(HealthMonitor):
    """Global gradient norm vs. an EMA baseline of itself.

    After ``warmup`` observations seed the baseline, an epoch whose mean
    gradient norm is more than ``ratio``× the baseline (or less than
    baseline/``ratio``) raises a warning; NaN/Inf norms are critical.
    """

    name = "gradient_drift"

    def __init__(self, ratio: float = 4.0, warmup: int = 2, ema_alpha: float = 0.3) -> None:
        super().__init__()
        if ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {ratio}")
        self.ratio = ratio
        self.warmup = warmup
        self.ema_alpha = ema_alpha
        self.baseline = float("nan")

    def observe(self, epoch: int, grad_norm: float) -> Optional[HealthAlert]:
        """Feed one epoch's mean gradient norm; maybe returns an alert."""
        self._record(epoch, grad_norm)
        if not math.isfinite(grad_norm):
            return self._alert(
                "critical", epoch,
                f"non-finite gradient norm {grad_norm}", grad_norm, self.ratio,
            )
        alert = None
        if self.observations > self.warmup and self.baseline > 0:
            drift = grad_norm / self.baseline
            if drift > self.ratio or drift < 1.0 / self.ratio:
                alert = self._alert(
                    "warn", epoch,
                    f"gradient norm {grad_norm:.4f} drifted {drift:.2f}x from "
                    f"EMA baseline {self.baseline:.4f}",
                    drift, self.ratio,
                )
        if math.isnan(self.baseline):
            self.baseline = float(grad_norm)
        else:
            self.baseline += self.ema_alpha * (grad_norm - self.baseline)
        return alert


class DeadUnitMonitor(HealthMonitor):
    """Dead-unit / saturation rates from per-layer activation stats.

    Consumes the ``dead_fraction`` / ``saturation_fraction`` columns of
    :meth:`repro.obs.ModuleProfiler.layer_profiles` (requires the
    profiler's ``activation_stats`` switch).  A layer whose outputs are
    more than ``max_dead`` zeros, or more than ``max_saturated``
    saturated, raises a warning naming the layer.
    """

    name = "dead_units"

    def __init__(self, max_dead: float = 0.90, max_saturated: float = 0.90) -> None:
        super().__init__()
        self.max_dead = max_dead
        self.max_saturated = max_saturated
        self.worst_layer: Optional[str] = None

    def observe_layers(
        self, epoch: int, layer_profiles: Sequence[Dict[str, Any]]
    ) -> List[HealthAlert]:
        """Scan one snapshot of layer profiles; returns any new alerts."""
        alerts: List[HealthAlert] = []
        worst = 0.0
        for layer in layer_profiles:
            dead = float(layer.get("dead_fraction", 0.0) or 0.0)
            saturated = float(layer.get("saturation_fraction", 0.0) or 0.0)
            name = layer.get("name", "?")
            if dead >= worst:
                worst, self.worst_layer = dead, str(name)
            if dead > self.max_dead:
                alerts.append(
                    self._alert(
                        "warn", epoch,
                        f"layer {name!r}: {dead:.1%} of activations are zero",
                        dead, self.max_dead,
                    )
                )
            if saturated > self.max_saturated:
                alerts.append(
                    self._alert(
                        "warn", epoch,
                        f"layer {name!r}: {saturated:.1%} of activations saturated",
                        saturated, self.max_saturated,
                    )
                )
        self._record(epoch, worst)
        return alerts

    def summary(self) -> Dict[str, Any]:
        payload = super().summary()
        payload["worst_layer"] = self.worst_layer
        return payload


class AttentionEntropyMonitor(HealthMonitor):
    """Fraud-attention entropy collapse detector.

    Feed the mean Shannon entropy of the attention rows and the maximum
    achievable entropy (``log`` of the mean number of valid slots).  An
    epoch whose *normalized* entropy falls below ``floor`` means the
    attention has collapsed toward a point mass — review-level
    explanations are no longer discriminating between reviews.
    """

    name = "attention_entropy"

    def __init__(self, floor: float = 0.15, warmup: int = 1) -> None:
        super().__init__()
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"floor must be in [0, 1], got {floor}")
        self.floor = floor
        self.warmup = warmup

    def observe(
        self, epoch: int, entropy: float, max_entropy: float
    ) -> Optional[HealthAlert]:
        """Feed one epoch's mean attention entropy; maybe returns an alert."""
        normalized = entropy / max_entropy if max_entropy > 0 else 1.0
        self._record(epoch, normalized)
        if self.observations <= self.warmup:
            return None
        if normalized < self.floor:
            return self._alert(
                "warn", epoch,
                f"attention entropy collapsed to {normalized:.3f} of maximum "
                f"({entropy:.3f} / {max_entropy:.3f} nats)",
                normalized, self.floor,
            )
        return None


class CalibrationDriftMonitor(HealthMonitor):
    """Per-epoch ECE of the reliability head vs. the best epoch so far.

    Alerts when ECE exceeds ``best + drift`` (the head is *losing*
    calibration while training continues — the classic symptom of
    collapsing to the majority class) or the absolute ceiling
    ``max_ece``.
    """

    name = "calibration_drift"

    def __init__(self, drift: float = 0.10, max_ece: float = 0.30) -> None:
        super().__init__()
        self.drift = drift
        self.max_ece = max_ece
        self.best = float("nan")

    def observe(self, epoch: int, ece: float) -> Optional[HealthAlert]:
        """Feed one epoch's expected calibration error; maybe alerts."""
        self._record(epoch, ece)
        alert = None
        if ece > self.max_ece:
            alert = self._alert(
                "warn", epoch,
                f"ECE {ece:.4f} above absolute ceiling {self.max_ece}",
                ece, self.max_ece,
            )
        elif not math.isnan(self.best) and ece > self.best + self.drift:
            alert = self._alert(
                "warn", epoch,
                f"ECE {ece:.4f} drifted {ece - self.best:+.4f} from best "
                f"{self.best:.4f}",
                ece, self.best + self.drift,
            )
        if math.isnan(self.best) or ece < self.best:
            self.best = float(ece)
        return alert


class HealthSuite:
    """The four standard monitors plus cross-monitor alert collection.

    ``RRRETrainer.fit`` owns one per telemetry-enabled run; custom
    monitors can be appended to :attr:`extra` and are included in the
    report under their ``name``.
    """

    def __init__(
        self,
        gradient: Optional[GradientDriftMonitor] = None,
        dead_units: Optional[DeadUnitMonitor] = None,
        attention: Optional[AttentionEntropyMonitor] = None,
        calibration: Optional[CalibrationDriftMonitor] = None,
    ) -> None:
        self.gradient = gradient or GradientDriftMonitor()
        self.dead_units = dead_units or DeadUnitMonitor()
        self.attention = attention or AttentionEntropyMonitor()
        self.calibration = calibration or CalibrationDriftMonitor()
        self.extra: List[HealthMonitor] = []

    def monitors(self) -> List[HealthMonitor]:
        """Every monitor in report order."""
        return [
            self.gradient,
            self.dead_units,
            self.attention,
            self.calibration,
            *self.extra,
        ]

    @property
    def alerts(self) -> List[HealthAlert]:
        """All alerts across monitors, in observation order per monitor."""
        collected: List[HealthAlert] = []
        for monitor in self.monitors():
            collected.extend(monitor.alerts)
        return collected

    @property
    def status(self) -> str:
        """Worst status across monitors."""
        statuses = {m.status for m in self.monitors()}
        if "critical" in statuses:
            return "critical"
        if "warn" in statuses:
            return "warn"
        return "ok"

    def report(self) -> Dict[str, Any]:
        """The ``health`` section of a schema-v2 :class:`RunReport`."""
        return {
            "status": self.status,
            "monitors": {m.name: m.summary() for m in self.monitors()},
            "alerts": [a.to_dict() for a in self.alerts],
        }


def attention_entropy(
    weights: np.ndarray, mask: Optional[np.ndarray] = None, eps: float = 1e-12
) -> Dict[str, float]:
    """Mean Shannon entropy of attention rows, plus the achievable maximum.

    Parameters
    ----------
    weights:
        ``(B, s)`` attention weights (rows ≈ sum to 1; renormalized
        defensively here).
    mask:
        Optional ``(B, s)`` validity mask; padded slots are excluded
        from both the entropy and the per-row maximum ``log(valid)``.

    Returns ``{"entropy": ..., "max_entropy": ...}`` in nats; a row with
    a single valid slot contributes 0 to both.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be (B, s), got shape {weights.shape}")
    if mask is None:
        mask = np.ones_like(weights)
    else:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != weights.shape:
            raise ValueError("mask must match weights shape")
    masked = np.clip(weights, 0.0, None) * mask
    totals = masked.sum(axis=1, keepdims=True)
    probs = masked / np.maximum(totals, eps)
    entropy_rows = -(probs * np.log(probs + eps) * mask).sum(axis=1)
    valid = mask.sum(axis=1)
    max_rows = np.log(np.maximum(valid, 1.0))
    return {
        "entropy": float(entropy_rows.mean()),
        "max_entropy": float(max_rows.mean()),
    }
