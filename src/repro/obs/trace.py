"""Span-based structured tracing with a JSONL event log.

A :class:`Tracer` emits a flat stream of events — span begin/end pairs
and point events — each carrying a trace id, a span id, and the parent
span id, so one training run serializes into a single reconstructable
tree covering data generation, every epoch, evaluation, and re-ranking.

Three ways to produce spans:

* explicitly, via the context manager / decorator API::

      with tracer.span("load", kind="data", dataset="yelpchi"):
          ...

      @traced("rank.recommend", kind="rank")
      def recommend_items(...): ...

* implicitly, by layering on the existing timer registry:
  :class:`TracingTimerRegistry` is a drop-in
  :class:`repro.obs.TimerRegistry` whose timer scopes *also* emit spans
  (kind inferred from the dotted path, see :data:`KIND_RULES`) — so
  every already-timed section of ``RRRETrainer.fit`` shows up in the
  trace for free;

* ambiently: library code calls :func:`maybe_span` / :func:`emit_event`,
  which are no-ops (one global read + ``None`` check) unless a tracer
  was installed with :func:`use_tracer` — that is how
  ``repro.data.synthetic``, ``repro.data.catalogs``, and
  ``repro.core.recommend`` join a trace without API changes.

Events are JSON objects, one per line (JSONL), flushed eagerly so
``python -m repro watch`` can tail a live run::

    {"event": "span_begin", "ts": ..., "trace": "...", "span": "1",
     "parent": null, "name": "fit.epoch.train", "kind": "epoch", "attrs": {}}
    {"event": "span_end", ..., "duration": 3.21}
    {"event": "point", ..., "name": "epoch", "attrs": {"train_loss": 4.2}}
"""

from __future__ import annotations

import functools
import json
import threading
import time
import uuid
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..analysis.concurrency.locks import make_lock
from .timers import TimerRegistry

__all__ = [
    "KIND_RULES",
    "Span",
    "Tracer",
    "TracingTimerRegistry",
    "current_tracer",
    "emit_event",
    "kind_for_path",
    "maybe_span",
    "read_events",
    "set_tracer",
    "traced",
    "use_tracer",
]

#: ``(substring, kind)`` rules applied to the *last* segment of a dotted
#: timer path (first match wins) when a :class:`TracingTimerRegistry`
#: infers a span kind.  Paths matching nothing get kind ``"phase"``.
KIND_RULES: Tuple[Tuple[str, str], ...] = (
    ("eval", "eval"),
    ("pretrain", "data"),  # before "train": "pretrain_words" is data work
    ("train", "epoch"),
    ("epoch", "epoch"),
    ("vocab", "data"),
    ("load", "data"),
    ("generate", "data"),
    ("batch", "data"),
    ("recommend", "rank"),
    ("explain", "rank"),
    ("rank", "rank"),
)


def kind_for_path(path: str) -> str:
    """Span kind inferred from a dotted timer path (see :data:`KIND_RULES`)."""
    leaf = path.rsplit(".", 1)[-1]
    for needle, kind in KIND_RULES:
        if needle in leaf:
            return kind
    return "phase"


class Span:
    """One open span: identity plus start time (attrs ride on the events)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind", "start")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        start: float,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start


class Tracer:
    """Emits span and point events to a sink, one JSON object per line.

    Parameters
    ----------
    sink:
        ``None`` → events buffer in memory (:attr:`events`);
        a path → JSONL file, line-flushed so it can be tailed;
        a callable → invoked with each event dict.
    trace_id:
        Identity shared by every event of this tracer (random default).
    """

    def __init__(
        self,
        sink: Union[None, str, Path, Callable[[Dict[str, Any]], None]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.events: List[Dict[str, Any]] = []
        self._lock = make_lock("obs.trace")
        self._counter = 0
        self._local = threading.local()
        self._file = None
        self._callable: Optional[Callable[[Dict[str, Any]], None]] = None
        if callable(sink):
            self._callable = sink
        elif sink is not None:
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(path, "w", encoding="utf-8")

    # -- span stack (per thread) ---------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return str(self._counter)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- emission ------------------------------------------------------
    def _emit(self, payload: Dict[str, Any]) -> None:
        if self._callable is not None:
            self._callable(payload)
            return
        # The file handle is checked *under* the lock so a concurrent
        # close() cannot yank it between the check and the write.
        with self._lock:
            if self._file is not None:
                line = json.dumps(payload, sort_keys=False, default=str)
                self._file.write(line + "\n")  # lint: allow[LOCK003] — line-flushed JSONL sink by design; the lock scope IS the write
                self._file.flush()  # lint: allow[LOCK003] — tail-ability contract: every event visible immediately
            else:
                self.events.append(payload)

    def begin(self, name: str, kind: str = "span", **attrs: Any) -> Span:
        """Open a span explicitly (prefer :meth:`span`); returns it."""
        parent = self.current_span()
        span = Span(
            trace_id=self.trace_id,
            span_id=self._next_id(),
            parent_id=parent.span_id if parent else None,
            name=name,
            kind=kind,
            start=time.perf_counter(),
        )
        self._stack().append(span)
        self._emit(
            {
                "event": "span_begin",
                "ts": time.time(),  # lint: allow[TIME001] — trace events carry wall-clock timestamps by design
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": name,
                "kind": kind,
                "attrs": attrs,
            }
        )
        return span

    def end(self, span: Span, **attrs: Any) -> float:
        """Close ``span`` (and any stale children); returns its duration."""
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        duration = time.perf_counter() - span.start
        self._emit(
            {
                "event": "span_end",
                "ts": time.time(),  # lint: allow[TIME001] — trace events carry wall-clock timestamps by design
                "trace": span.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "kind": span.kind,
                "duration": duration,
                "attrs": attrs,
            }
        )
        return duration

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs: Any):
        """Context manager: a span around the ``with`` body."""
        handle = self.begin(name, kind, **attrs)
        try:
            yield handle
        finally:
            self.end(handle)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point event under the current span."""
        parent = self.current_span()
        self._emit(
            {
                "event": "point",
                "ts": time.time(),  # lint: allow[TIME001] — trace events carry wall-clock timestamps by design
                "trace": self.trace_id,
                "span": self._next_id(),
                "parent": parent.span_id if parent else None,
                "name": name,
                "attrs": attrs,
            }
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Flush and close the sink (idempotent, safe against live emits)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TracingTimerRegistry(TimerRegistry):
    """A :class:`TimerRegistry` whose timer scopes also emit spans.

    Drop-in: every ``with registry.timer(name)`` (and decorator use)
    both accumulates timing statistics *and* emits ``span_begin`` /
    ``span_end`` events to ``tracer``, with the span kind inferred from
    the dotted path via :func:`kind_for_path`.
    """

    def __init__(self, tracer: Tracer, ema_alpha: float = 0.2) -> None:
        super().__init__(ema_alpha=ema_alpha)
        self.tracer = tracer
        self._spans = threading.local()

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._spans, "stack", None)
        if stack is None:
            stack = []
            self._spans.stack = stack
        return stack

    def _push(self, name: str) -> None:
        super()._push(name)
        path = self._stack()[-1]
        self._span_stack().append(
            self.tracer.begin(path, kind=kind_for_path(path))
        )

    def _pop(self, elapsed: float) -> None:
        super()._pop(elapsed)
        spans = self._span_stack()
        if spans:
            self.tracer.end(spans.pop())


# -- ambient tracer ----------------------------------------------------

_current_tracer: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is off."""
    return _current_tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the ambient one; returns the previous."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Make ``tracer`` ambient for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def maybe_span(name: str, kind: str = "span", **attrs: Any):
    """A span on the ambient tracer, or a no-op context when tracing is off."""
    tracer = _current_tracer
    if tracer is None:
        return nullcontext()
    return tracer.span(name, kind, **attrs)


def emit_event(name: str, **attrs: Any) -> None:
    """A point event on the ambient tracer; silently dropped when off."""
    tracer = _current_tracer
    if tracer is not None:
        tracer.event(name, **attrs)


def traced(name: Optional[str] = None, kind: str = "span") -> Callable:
    """Decorator: run the function inside :func:`maybe_span`.

    Zero-cost when no ambient tracer is installed (one global read).
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _current_tracer is None:
                return fn(*args, **kwargs)
            with _current_tracer.span(label, kind):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def read_events(path) -> List[Dict[str, Any]]:
    """Parse a JSONL event file; malformed/truncated lines are skipped.

    Tolerance to a trailing partial line matters because the file may be
    mid-write when tailed by ``python -m repro watch``.
    """
    events: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events
