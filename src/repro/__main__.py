"""Command-line interface: regenerate any paper artifact, or run one
profiled training run.

Usage::

    python -m repro table3                 # Table III at default scale
    python -m repro fig2 --scale 0.5       # Fig. 2 data
    python -m repro all --seeds 3          # everything
    python -m repro list                   # show available experiments
    python -m repro train --dataset yelpchi --epochs 6 \
        --profile --report-json out.json   # telemetry: RunReport JSON
    python -m repro train --events run.jsonl  # + traced spans & metrics
    python -m repro train --checkpoint-dir ckpts \
        --checkpoint-every 1               # fault-tolerant: atomic checkpoints
    python -m repro train --checkpoint-dir ckpts --resume  # continue a run
    python -m repro watch run.jsonl        # render the event stream
    python -m repro watch run.jsonl --follow  # live-tail a running fit
    python -m repro analyze                # all five static-analysis passes
    python -m repro analyze --lint src/repro  # repo discipline linter only
    python -m repro analyze --shapes --graph  # config + autograd validation
    python -m repro analyze --concurrency  # lock-discipline lint (LOCK001-004)
    python -m repro analyze --concurrency --dynamic  # + race-detector exercise
    python -m repro plan                   # compile the execution plan, print it
    python -m repro plan --explain         # + inferred shapes and buffer schedule
    python -m repro train --plan           # fit on the compiled hot path
    python -m repro export-embeddings --out store/  # train + export serving store
    python -m repro serve --store store/ --port 8080  # online top-K HTTP API

``train`` fits RRRE once with full telemetry (per-layer forward/backward
timings, gradient norms, phase timers — see ``docs/observability.md``)
and prints the run report; ``--report-json`` writes the same report as
schema-stable JSON.  ``--events`` additionally streams structured trace
events (spans, epoch records, health alerts) to a JSONL file and dumps
the metrics registry in Prometheus text format next to it.  ``watch``
renders such an event file as a live status board.  For table/figure
experiments ``--report-json`` dumps the regenerated artifact's raw
numbers instead.

``plan`` compiles the plan-then-execute hot path for the default model
(see ``docs/execution_plan.md``) and prints what got planned — the
fused recurrent executors, the attention softmax fusion, and with
``--explain`` the inferred symbolic shapes plus each executor's pooled
buffer schedule.  ``train --plan`` runs the actual fit on that compiled
hot path (planned and interpreted mode agree to ≤1e-9).

``analyze`` runs the static-analysis suite (see ``docs/analysis.md``):
symbolic shape validation of the default config, autograd-graph
validation of one real forward, finite-difference gradient checks of
every ``repro.nn`` layer, the repo discipline linter, and the
lock-discipline pass over the threaded runtime.  Pick passes with
``--shapes/--graph/--gradcheck/--lint/--concurrency`` (default: all
five); ``--concurrency --dynamic`` additionally runs the Eraser-style
race-detection exercise.  The exit code is non-zero when any selected
pass fails.

``export-embeddings`` fits RRRE and factors the trained model into a
serving-ready embedding store (see ``docs/serving.md``); ``serve``
loads such a store and answers ``/recommend`` / ``/explain`` /
``/healthz`` / ``/metrics`` over HTTP without ever re-encoding review
text.  The full subcommand catalogue, with one-line descriptions, is in
``python -m repro --help`` (driven by :data:`SUBCOMMANDS`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from .eval import (
    run_ablation_attention,
    run_ablation_encoder,
    run_ablation_lambda,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

#: experiment name → (runner, accepts_seeds)
EXPERIMENTS: Dict[str, tuple] = {
    "table2": (run_table2, False),
    "table3": (run_table3, True),
    "table4": (run_table4, True),
    "table5": (run_table5, True),
    "table6": (run_table6, True),
    "table7": (run_table7, False),
    "table8": (run_table8, False),
    "fig2": (run_fig2, False),
    "fig3": (run_fig3, False),
    "fig4": (run_fig4, False),
    "ablation-attention": (run_ablation_attention, True),
    "ablation-encoder": (run_ablation_encoder, True),
    "ablation-lambda": (run_ablation_lambda, False),
}

#: Every subcommand with a one-line description — drives the parser's
#: choices, ``--help`` epilog, and ``list`` output, and is cross-checked
#: against the docs by ``scripts/check_docs.py``.
SUBCOMMANDS: Dict[str, str] = {
    "table2": "dataset statistics next to the paper's (Table II)",
    "table3": "bRMSE of all rating models across datasets (Table III)",
    "table4": "AUC/AP of reliability scoring across datasets (Table IV)",
    "table5": "top-K ranking quality, NDCG@k on YelpChi (Table V)",
    "table6": "top-K ranking quality, NDCG@k on CDs (Table VI)",
    "table7": "case study: rating→reliability re-ranked top-K (Table VII)",
    "table8": "case study: reliable explanations for one item (Table VIII)",
    "fig2": "training curves per embedding size k (Fig. 2)",
    "fig3": "user input size s_u sweep (Fig. 3)",
    "fig4": "item input size s_i sweep (Fig. 4)",
    "ablation-attention": "ablate the review-attention module",
    "ablation-encoder": "swap the review text encoder variants",
    "ablation-lambda": "sweep the rating/reliability loss weight",
    "all": "regenerate every table and figure in sequence",
    "list": "print this subcommand catalogue and exit",
    "train": "one telemetry-enabled RRRE fit (profiling, events, checkpoints)",
    "watch": "render a trace event file as a live status board",
    "analyze": "static-analysis suite: shapes, graph, gradcheck, lint, concurrency",
    "plan": "compile the plan-then-execute hot path and print it",
    "export-embeddings": "fit RRRE and export the serving embedding store",
    "serve": "HTTP recommendation API over an exported store",
}


def _catalogue() -> str:
    """The ``--help`` epilog: every subcommand with its description."""
    width = max(len(name) for name in SUBCOMMANDS)
    lines = ["subcommands:"]
    for name in sorted(SUBCOMMANDS):
        lines.append(f"  {name:<{width}}  {SUBCOMMANDS[name]}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the RRRE paper (ICDE 2021), "
        "or run the training/analysis/serving entry points.",
        epilog=_catalogue(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        metavar="subcommand",
        choices=sorted(SUBCOMMANDS),
        help="what to run (catalogue below)",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="event file for 'watch' (JSONL written by train --events), "
        "or the lint target for 'analyze --lint' (default: src/repro)",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale")
    parser.add_argument("--seeds", type=int, default=2, help="number of seeds")
    parser.add_argument("--epochs", type=int, default=12, help="RRRE epochs")
    parser.add_argument(
        "--dataset",
        default="yelpchi",
        help="dataset preset for 'train' (see repro.data.DATASET_NAMES)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-layer forward/backward profile after the run",
    )
    parser.add_argument(
        "--report-json",
        metavar="PATH",
        default=None,
        help="write the run report (or experiment data) as JSON to PATH",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="for 'train': stream trace events (spans, epochs, health) to a JSONL file",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="for 'train': write the metrics registry in Prometheus text format "
        "(default: <events>.prom when --events is given)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="for 'train': write atomic training checkpoints to DIR and "
        "enable the divergence guard (see docs/resilience.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="for 'train': resume from the newest intact checkpoint in "
        "--checkpoint-dir and continue to a result identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="for 'train': checkpoint every N epochs (default 1)",
    )
    parser.add_argument(
        "--shapes",
        action="store_true",
        help="for 'analyze': symbolic shape check of the default config",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="for 'analyze': autograd-graph validation of one real forward",
    )
    parser.add_argument(
        "--gradcheck",
        action="store_true",
        help="for 'analyze': finite-difference gradient checks of every layer",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="for 'analyze': run the repo discipline linter (rules: "
        "RNG001/RNG002/TIME001/DTYPE001/MUT001/MUT002)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="for 'analyze': lock-discipline lint of the threaded runtime "
        "(rules: LOCK001/LOCK002/LOCK003/LOCK004)",
    )
    parser.add_argument(
        "--dynamic",
        action="store_true",
        help="for 'analyze --concurrency': additionally run the Eraser-style "
        "dynamic race-detection exercise over the instrumented serving "
        "classes (implies --concurrency)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="for 'plan': also print inferred shapes and the pooled "
        "buffer schedule of every planned module",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="for 'train': fit on the compiled plan-then-execute hot path "
        "(see docs/execution_plan.md; results match interpreted to 1e-9)",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="for 'watch': keep tailing the event file until run_end",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="for 'watch --follow': poll interval in seconds",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="for 'export-embeddings': store output directory "
        "(default: stores/<dataset>)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="for 'export-embeddings': dataset/model seed (default 0)",
    )
    parser.add_argument(
        "--versioned",
        action="store_true",
        help="for 'export-embeddings': publish into a versioned root "
        "(vNNNN/ + manifest + CURRENT pointer; enables hot-reload)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="for 'serve': exported embedding-store directory or "
        "versioned root (required)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="for 'serve': bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="for 'serve': bind port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=10,
        help="for 'serve': default recommendations per request",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="for 'serve': micro-batch flush size",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="for 'serve': micro-batch flush deadline in milliseconds",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="for 'serve': result-cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=30.0,
        help="for 'serve': result-cache time-to-live in seconds",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        help="for 'serve': default per-request deadline in milliseconds "
        "(0 disables deadlines)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="for 'serve': admission bound on concurrent requests "
        "(excess load is shed with 503 + Retry-After)",
    )
    parser.add_argument(
        "--watch-store",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help="for 'serve': poll the versioned root's CURRENT pointer at "
        "this interval and hot-reload on change (0 disables)",
    )
    return parser


def run_one(
    name: str,
    scale: float,
    seeds: int,
    epochs: int,
    report_json: Optional[str] = None,
) -> None:
    """Run one registered experiment; optionally dump its data as JSON."""
    import inspect

    runner, accepts_seeds = EXPERIMENTS[name]
    signature = inspect.signature(runner)
    has_var_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    )
    accepted = set(signature.parameters)
    kwargs = {"scale": scale}
    if has_var_kwargs or "epochs" in accepted:
        kwargs["epochs"] = epochs
    if accepts_seeds and (has_var_kwargs or "seeds" in accepted):
        kwargs["seeds"] = tuple(range(seeds))
    report = runner(**kwargs)
    print(report.rendered)
    print()
    if report_json:
        from .obs.report import SCHEMA_VERSION, _jsonable

        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment": name,
            "params": kwargs,
            "data": _jsonable(report.data),
            "rendered": report.rendered,
        }
        with open(report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {report_json}")


def run_train(
    dataset_name: str,
    scale: float,
    epochs: int,
    profile: bool,
    report_json: Optional[str],
    events: Optional[str] = None,
    metrics_path: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    plan: bool = False,
) -> None:
    """One telemetry-enabled RRRE fit; prints (and optionally writes) the report.

    With ``events`` the whole run — dataset generation, every epoch, the
    final evaluation, and a sample recommendation — is traced to a JSONL
    event stream, and the metrics registry is dumped in Prometheus text
    format (``metrics_path``, default ``<events>.prom``).

    ``checkpoint_dir`` turns on the fault-tolerant runtime (see
    ``docs/resilience.md``): atomic checkpoints every
    ``checkpoint_every`` epochs plus the divergence guard; ``resume``
    continues from the newest intact checkpoint in that directory.
    """
    import contextlib

    from .core import RRRETrainer, fast_config, recommend_items
    from .data import load_dataset, train_test_split
    from .obs import Telemetry, Tracer, use_tracer

    tracer = Tracer(events) if events else None
    scope = use_tracer(tracer) if tracer else contextlib.nullcontext()
    try:
        with scope:
            dataset = load_dataset(dataset_name, seed=0, scale=scale)
            train, test = train_test_split(dataset, seed=0)
            trainer = RRRETrainer(fast_config(epochs=epochs))
            trainer.fit(
                dataset,
                train,
                test,
                verbose=bool(checkpoint_dir),
                telemetry=Telemetry(),
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                checkpoint_every=checkpoint_every,
                guard=bool(checkpoint_dir),
                plan=plan,
            )
            if plan and trainer.plan is not None:
                print(trainer.plan.describe())
                print()
            # Exercise the re-ranking path so the trace carries rank spans.
            recommend_items(trainer, user_id=0, top_k=5)
    finally:
        if tracer is not None:
            tracer.close()
    report = trainer.report
    print(report.render(top_layers=20 if profile else 8))
    if events and not metrics_path:
        metrics_path = events + ".prom"
    if metrics_path and trainer.metrics_registry is not None:
        trainer.metrics_registry.save_prometheus(metrics_path)
        print(f"\nwrote {metrics_path}")
    if events:
        print(f"wrote {events}")
    if report_json:
        path = report.save(report_json)
        print(f"\nwrote {path}")


def run_plan(
    dataset_name: str,
    scale: float,
    explain: bool = False,
    report_json: Optional[str] = None,
) -> int:
    """Compile the execution plan for the default model and print it.

    Builds the same model ``train`` would fit (vocabulary and entity
    counts come from the dataset preset), compiles its plan, and prints
    :meth:`repro.plan.ExecutionPlan.describe`.  ``explain`` adds the
    inferred symbolic output shapes and the pooled buffer schedule per
    planned module — the reference for reading ``docs/execution_plan.md``
    against a live model.
    """
    from .core import RRRETrainer, fast_config
    from .core.model import RRRE
    from .data import InputSlots, ReviewTextTable, load_dataset, train_test_split
    from .plan import compile_plan

    cfg = fast_config()
    dataset = load_dataset(dataset_name, seed=0, scale=scale)
    train, _ = train_test_split(dataset, seed=0)
    table = ReviewTextTable.build(
        dataset,
        max_len=cfg.max_len,
        min_count=cfg.min_word_count,
        max_vocab=cfg.max_vocab,
    )
    model = RRRE(
        cfg,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        vocab_size=len(table.vocab),
    )
    plan = compile_plan(model, batch_size=cfg.batch_size, seq_len=cfg.max_len)
    print(plan.describe(explain=explain))
    if report_json:
        from .obs.report import SCHEMA_VERSION, _jsonable

        payload = {
            "schema_version": SCHEMA_VERSION,
            "dataset": dataset_name,
            "stats": _jsonable(plan.stats()),
            "entries": [
                {
                    "path": e.path,
                    "kind": e.kind,
                    "summary": e.summary,
                    "shapes": list(e.shapes),
                    "buffers": list(e.buffers),
                }
                for e in plan.entries
            ],
        }
        with open(report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {report_json}")
    return 0


def run_analyze(
    shapes: bool,
    graph: bool,
    gradcheck: bool,
    lint: bool,
    concurrency: bool = False,
    dynamic: bool = False,
    path: Optional[str] = None,
    report_json: Optional[str] = None,
) -> int:
    """Run the selected static-analysis passes (all five when none given).

    Prints one summary block per pass and returns a non-zero exit code
    when any selected pass fails, so CI can gate on it.  ``path`` is the
    lint target (default ``src/repro``); ``report_json`` writes the full
    machine-readable results.  ``dynamic`` implies ``concurrency`` and
    adds the instrumented race-detection exercise to that pass.
    """
    from .analysis import (
        PreflightError,
        analyze_concurrency,
        check_shapes,
        lint_paths,
        preflight,
        run_layer_gradchecks,
    )
    from .core.config import RRREConfig

    if dynamic:
        concurrency = True
    if not (shapes or graph or gradcheck or lint or concurrency):
        shapes = graph = gradcheck = lint = concurrency = True
    passes: Dict[str, dict] = {}
    failed = []

    if shapes:
        report = check_shapes(RRREConfig(), strict=False)
        passes["shapes"] = report.to_dict()
        if report.ok:
            print(f"shapes: OK ({len(report.shapes)} named activations)")
            for name, spec in report.shapes.items():
                print(f"  {name:24s} {spec}")
        else:
            print(f"shapes: FAIL\n  {report.error}")
            failed.append("shapes")

    if graph:
        from .core.model import RRRE
        from .data import InputSlots, ReviewTextTable, load_dataset, train_test_split

        cfg = RRREConfig(epochs=1)
        dataset = load_dataset("yelpchi", seed=0, scale=0.1)
        train, _ = train_test_split(dataset, seed=0)
        table = ReviewTextTable.build(
            dataset,
            max_len=cfg.max_len,
            min_count=cfg.min_word_count,
            max_vocab=cfg.max_vocab,
        )
        slots = InputSlots.build(train, s_u=cfg.s_u, s_i=cfg.s_i)
        model = RRRE(
            cfg,
            num_users=dataset.num_users,
            num_items=dataset.num_items,
            vocab_size=len(table.vocab),
        )
        try:
            result = preflight(model, slots, table, mode="strict")
            info = result["graph"]
            print(
                f"graph: OK ({info['num_nodes']} tape nodes, "
                f"{info['reachable_parameters']}/{info['num_parameters']} "
                f"parameters reachable, {len(info['issues'])} warning(s))"
            )
            passes["graph"] = result
        except PreflightError as err:
            print(f"graph: FAIL\n  {err}")
            passes["graph"] = {"ok": False, "error": str(err)}
            failed.append("graph")

    if gradcheck:
        results = run_layer_gradchecks(max_elements=50)
        passes["gradcheck"] = {name: r.to_dict() for name, r in results.items()}
        bad = [name for name, r in results.items() if not r.ok]
        worst = max(r.max_rel_err for r in results.values())
        if bad:
            print(f"gradcheck: FAIL ({', '.join(sorted(bad))})")
            for name in sorted(bad):
                for failure in results[name].failures[:3]:
                    print(f"  {name}: {failure}")
            failed.append("gradcheck")
        else:
            print(
                f"gradcheck: OK ({len(results)} layers, "
                f"max relative error {worst:.3g})"
            )

    if lint:
        target = path or "src/repro"
        report = lint_paths([target])
        passes["lint"] = report.to_dict()
        if report.ok:
            print(f"lint: OK ({report.files_checked} files under {target})")
        else:
            print(f"lint: FAIL ({len(report.violations)} violation(s))")
            for violation in report.violations:
                print(f"  {violation}")
            failed.append("lint")

    if concurrency:
        target = path or "src/repro"
        result = analyze_concurrency(target, dynamic=dynamic)
        passes["concurrency"] = result
        models = sum(len(m) for m in result["models"].values())
        if not result["violations"]:
            print(
                f"concurrency: OK ({result['files_checked']} files, "
                f"{models} lock model(s), 0 LOCK violations)"
            )
        else:
            print(f"concurrency: FAIL ({len(result['violations'])} violation(s))")
            for violation in result["violations"]:
                print(
                    f"  {violation['path']}:{violation['line']}:{violation['col']}: "
                    f"{violation['rule']} {violation['message']}"
                )
        if not result["ok"]:
            failed.append("concurrency")
        if dynamic:
            dyn = result["dynamic"]
            check = dyn["self_check"]
            print(
                f"  dynamic: {'OK' if dyn['ok'] else 'FAIL'} "
                f"({len(dyn['races'])} candidate race(s); self-check "
                f"racy={'caught' if check['racy_class_detected'] else 'MISSED'}, "
                f"deadlock={'caught' if check['abba_deadlock_detected'] else 'MISSED'})"
            )
            for race in dyn["races"]:
                print(f"    race: {race['class']}.{race['field']}")

    if report_json:
        from .obs.report import SCHEMA_VERSION, _jsonable

        payload = {
            "schema_version": SCHEMA_VERSION,
            "ok": not failed,
            "failed_passes": failed,
            "passes": _jsonable(passes),
        }
        with open(report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {report_json}")
    return 1 if failed else 0


def run_export(
    dataset_name: str,
    scale: float,
    epochs: int,
    seed: int,
    out: Optional[str],
    versioned: bool = False,
) -> int:
    """Fit RRRE and export the serving embedding store to ``out``.

    The export is verified against the live model (store scores must
    match ``predict_pairs``) before anything is written; the resulting
    directory is what ``python -m repro serve --store DIR`` loads.
    ``versioned=True`` publishes into ``out`` as a versioned root
    (``vNNNN/`` + SHA-256 manifest + ``CURRENT`` pointer) — the layout
    the serving hot-reload path consumes.
    """
    from .core import RRRETrainer, fast_config
    from .data import load_dataset, train_test_split
    from .serve import export_store

    out = out or f"stores/{dataset_name}"
    dataset = load_dataset(dataset_name, seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    trainer = RRRETrainer(fast_config(epochs=epochs, seed=seed))
    trainer.fit(dataset, train, test)
    store = export_store(trainer, out_dir=out, versioned=versioned)
    where = store.path if store.path is not None else out
    print(
        f"exported store to {where}: {store.num_users} users, "
        f"{store.num_items} items, {store.num_reviews} reviews "
        f"(verified against the live model)"
    )
    return 0


def run_serve(args) -> int:
    """Serve an exported store over HTTP until interrupted."""
    from .serve import ServeConfig, make_server

    if not args.store:
        print(
            "serve needs an exported store: "
            "python -m repro serve --store stores/yelpchi",
            file=sys.stderr,
        )
        return 2
    config = ServeConfig(
        top_k=args.top_k,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
    )
    server, service = make_server(
        args.store, host=args.host, port=args.port, config=config
    )
    if args.watch_store > 0:
        service.start_store_watcher(interval=args.watch_store)
    host, port = server.server_address
    # Flushed eagerly: with piped stdout the port announcement must be
    # visible before serve_forever blocks (scripts parse it).
    print(
        f"serving {service.store.meta.get('dataset')} store "
        f"({service.store.num_users} users, {service.store.num_items} items) "
        f"on http://{host}:{port}",
        flush=True,
    )
    print(f"try: curl 'http://{host}:{port}/recommend?user=0&k=5'", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def main(argv=None) -> int:
    # Intermixed parsing lets the optional positional follow flags, as in
    # ``python -m repro analyze --lint src/repro``.
    args = build_parser().parse_intermixed_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in SUBCOMMANDS)
        for name in sorted(SUBCOMMANDS):
            print(f"{name:<{width}}  {SUBCOMMANDS[name]}")
        return 0
    if args.experiment == "train":
        if args.resume and not args.checkpoint_dir:
            print("--resume requires --checkpoint-dir", file=sys.stderr)
            return 2
        run_train(
            args.dataset,
            args.scale,
            args.epochs,
            args.profile,
            args.report_json,
            events=args.events,
            metrics_path=args.metrics,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            plan=args.plan,
        )
        return 0
    if args.experiment == "plan":
        return run_plan(
            args.dataset,
            args.scale,
            explain=args.explain,
            report_json=args.report_json,
        )
    if args.experiment == "analyze":
        return run_analyze(
            args.shapes,
            args.graph,
            args.gradcheck,
            args.lint,
            concurrency=args.concurrency,
            dynamic=args.dynamic,
            path=args.path,
            report_json=args.report_json,
        )
    if args.experiment == "watch":
        if not args.path:
            print("watch needs an event file: python -m repro watch run.jsonl", file=sys.stderr)
            return 2
        from .obs.watch import watch

        return watch(args.path, follow=args.follow, poll=args.poll)
    if args.experiment == "export-embeddings":
        return run_export(
            args.dataset, args.scale, args.epochs, args.seed, args.out,
            versioned=args.versioned,
        )
    if args.experiment == "serve":
        return run_serve(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.report_json and len(names) > 1:
        print("--report-json needs a single experiment (not 'all')", file=sys.stderr)
        return 2
    for name in names:
        run_one(name, args.scale, args.seeds, args.epochs, report_json=args.report_json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
