"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro table3                 # Table III at default scale
    python -m repro fig2 --scale 0.5       # Fig. 2 data
    python -m repro all --seeds 3          # everything
    python -m repro list                   # show available experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from .eval import (
    run_ablation_attention,
    run_ablation_encoder,
    run_ablation_lambda,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

#: experiment name → (runner, accepts_seeds)
EXPERIMENTS: Dict[str, tuple] = {
    "table2": (run_table2, False),
    "table3": (run_table3, True),
    "table4": (run_table4, True),
    "table5": (run_table5, True),
    "table6": (run_table6, True),
    "table7": (run_table7, False),
    "table8": (run_table8, False),
    "fig2": (run_fig2, False),
    "fig3": (run_fig3, False),
    "fig4": (run_fig4, False),
    "ablation-attention": (run_ablation_attention, True),
    "ablation-encoder": (run_ablation_encoder, True),
    "ablation-lambda": (run_ablation_lambda, False),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the RRRE paper (ICDE 2021).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale")
    parser.add_argument("--seeds", type=int, default=2, help="number of seeds")
    parser.add_argument("--epochs", type=int, default=12, help="RRRE epochs")
    return parser


def run_one(name: str, scale: float, seeds: int, epochs: int) -> None:
    import inspect

    runner, accepts_seeds = EXPERIMENTS[name]
    signature = inspect.signature(runner)
    has_var_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    )
    accepted = set(signature.parameters)
    kwargs = {"scale": scale}
    if has_var_kwargs or "epochs" in accepted:
        kwargs["epochs"] = epochs
    if accepts_seeds and (has_var_kwargs or "seeds" in accepted):
        kwargs["seeds"] = tuple(range(seeds))
    report = runner(**kwargs)
    print(report.rendered)
    print()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, args.scale, args.seeds, args.epochs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
