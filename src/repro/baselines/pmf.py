"""PMF — Probabilistic Matrix Factorization (Mnih & Salakhutdinov 2008).

The classic rating baseline of Table III: r̂_ui = μ + b_u + b_i + p_u·q_i
learned by SGD with L2 regularization (the MAP view of PMF; biases are
the standard practical addition).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import RatingModel


class PMF(RatingModel):
    """Matrix factorization trained with SGD.

    Parameters
    ----------
    factors:
        Latent dimensionality of user/item vectors.
    lr:
        SGD learning rate.
    reg:
        L2 regularization strength on all learned quantities.
    epochs:
        Passes over the training ratings.
    use_biases:
        The original PMF is a pure inner product around the global mean;
        ``True`` adds the (later, BiasedMF-style) user/item bias terms.
    """

    name = "PMF"

    def __init__(
        self,
        factors: int = 16,
        lr: float = 0.01,
        reg: float = 0.05,
        epochs: int = 30,
        use_biases: bool = False,
        seed: int = 0,
    ) -> None:
        if factors < 1:
            raise ValueError(f"factors must be >= 1, got {factors}")
        self.factors = factors
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.use_biases = use_biases
        self.seed = seed
        self._fitted = False

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "PMF":
        rng = np.random.default_rng(self.seed)
        n_users, n_items = dataset.num_users, dataset.num_items
        self.user_factors = rng.normal(0, 0.1, (n_users, self.factors))
        self.item_factors = rng.normal(0, 0.1, (n_items, self.factors))
        self.user_bias = np.zeros(n_users)
        self.item_bias = np.zeros(n_items)
        self.global_mean = float(train.ratings.mean())

        users, items, ratings = train.user_ids, train.item_ids, train.ratings
        order = np.arange(len(users))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for idx in order:
                u, i, r = users[idx], items[idx], ratings[idx]
                pu, qi = self.user_factors[u], self.item_factors[i]
                pred = self.global_mean + self.user_bias[u] + self.item_bias[i] + pu @ qi
                err = r - pred
                if self.use_biases:
                    self.user_bias[u] += self.lr * (err - self.reg * self.user_bias[u])
                    self.item_bias[i] += self.lr * (err - self.reg * self.item_bias[i])
                self.user_factors[u] += self.lr * (err * qi - self.reg * pu)
                self.item_factors[i] += self.lr * (err * pu - self.reg * qi)
        self._fitted = True
        return self

    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        """Predicted ratings for arbitrary (u, i) pairs."""
        if not self._fitted:
            raise RuntimeError("PMF is not fitted; call fit() first")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        dots = np.einsum(
            "bf,bf->b", self.user_factors[user_ids], self.item_factors[item_ids]
        )
        return self.global_mean + self.user_bias[user_ids] + self.item_bias[item_ids] + dots

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        return self.predict(subset.user_ids, subset.item_ids)
