"""NARRE (Chen, Zhang, Liu & Ma, WWW 2018).

Neural Attentional Rating Regression with Review-level Explanations: a
text-CNN encodes each review, a *usefulness* attention (content +
counterpart ID, no own-ID channel) weights the reviews of each entity,
and a factorization machine predicts the rating.  NARRE models review
usefulness but not reliability — the closest relative of RRRE among the
Table III baselines.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

import repro.nn as nn
from repro.nn import functional as F

from ..data import InputSlots, ReviewDataset, ReviewSubset, ReviewTextTable, iter_batches
from ..metrics import biased_rmse
from .base import RatingModel


class _NarreModule(nn.Module):
    """Dual attention towers + FM head."""

    def __init__(
        self,
        vocab_size: int,
        num_users: int,
        num_items: int,
        word_dim: int,
        num_filters: int,
        kernel_size: int,
        id_dim: int,
        attention_dim: int,
        fm_factors: int,
        dropout: float,
        seed: int,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.word_embedding = nn.Embedding(vocab_size, word_dim, rng, padding_idx=0)
        self.user_cnn = nn.TextCNN(word_dim, num_filters, kernel_size, rng)
        self.item_cnn = nn.TextCNN(word_dim, num_filters, kernel_size, rng)
        self.user_id_embedding = nn.Embedding(num_users, id_dim, rng)
        self.item_id_embedding = nn.Embedding(num_items, id_dim, rng)
        self.user_attention = nn.ReviewAttention(
            num_filters, 0, id_dim, attention_dim, rng, include_own=False
        )
        self.item_attention = nn.ReviewAttention(
            num_filters, 0, id_dim, attention_dim, rng, include_own=False
        )
        self.user_project = nn.Linear(num_filters, id_dim, rng)
        self.item_project = nn.Linear(num_filters, id_dim, rng)
        self.fm = nn.FactorizationMachine(2 * id_dim, fm_factors, rng)
        self.dropout = nn.Dropout(dropout, rng)

    def encode_slots(self, cnn, slot_matrix, table):
        batch, s = slot_matrix.shape
        safe = np.maximum(slot_matrix.reshape(-1), 0)
        unique, inverse = np.unique(safe, return_inverse=True)
        vectors = cnn(self.word_embedding(table.token_ids[unique]))
        return F.take_rows(vectors, inverse.reshape(batch, s))

    def forward(self, user_ids, item_ids, slots: InputSlots, table: ReviewTextTable):
        u_rev = self.encode_slots(self.user_cnn, slots.user_slots[user_ids], table)
        u_other = self.item_id_embedding(slots.user_slot_items[user_ids])
        u_pooled, u_attn = self.user_attention(
            u_rev, None, u_other, mask=slots.user_slot_mask[user_ids]
        )
        x_u = self.user_project(u_pooled)

        i_rev = self.encode_slots(self.item_cnn, slots.item_slots[item_ids], table)
        i_other = self.user_id_embedding(slots.item_slot_users[item_ids])
        i_pooled, i_attn = self.item_attention(
            i_rev, None, i_other, mask=slots.item_slot_mask[item_ids]
        )
        y_i = self.item_project(i_pooled)

        e_u = self.user_id_embedding(user_ids)
        e_i = self.item_id_embedding(item_ids)
        z = self.dropout(F.concat([e_u + x_u, e_i + y_i], axis=-1))
        return self.fm(z), u_attn, i_attn


class NARRE(RatingModel):
    """NARRE rating predictor over review slots."""

    name = "NARRE"

    def __init__(
        self,
        word_dim: int = 16,
        num_filters: int = 32,
        kernel_size: int = 3,
        id_dim: int = 8,
        attention_dim: int = 8,
        fm_factors: int = 4,
        s_u: int = 5,
        s_i: int = 8,
        max_len: int = 14,
        dropout: float = 0.1,
        lr: float = 0.004,
        weight_decay: float = 1e-5,
        batch_size: int = 128,
        epochs: int = 8,
        max_vocab: int = 4000,
        seed: int = 0,
    ) -> None:
        self.word_dim = word_dim
        self.num_filters = num_filters
        self.kernel_size = kernel_size
        self.id_dim = id_dim
        self.attention_dim = attention_dim
        self.fm_factors = fm_factors
        self.s_u = s_u
        self.s_i = s_i
        self.max_len = max_len
        self.dropout = dropout
        self.lr = lr
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.max_vocab = max_vocab
        self.seed = seed
        self.module: Optional[_NarreModule] = None
        self.history: List[dict] = []

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "NARRE":
        rng = np.random.default_rng(self.seed)
        self.table = ReviewTextTable.build(
            dataset, max_len=self.max_len, max_vocab=self.max_vocab
        )
        self.slots = InputSlots.build(train, s_u=self.s_u, s_i=self.s_i)
        self.module = _NarreModule(
            vocab_size=len(self.table.vocab),
            num_users=dataset.num_users,
            num_items=dataset.num_items,
            word_dim=self.word_dim,
            num_filters=self.num_filters,
            kernel_size=self.kernel_size,
            id_dim=self.id_dim,
            attention_dim=self.attention_dim,
            fm_factors=self.fm_factors,
            dropout=self.dropout,
            seed=self.seed,
        )
        optimizer = nn.Adam(
            self.module.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        self._rating_range = (float(train.ratings.min()), float(train.ratings.max()))
        self.history = []
        for epoch in range(1, self.epochs + 1):
            start = time.perf_counter()
            self.module.train()
            total, batches = 0.0, 0
            for batch in iter_batches(train, self.batch_size, shuffle=True, rng=rng):
                optimizer.zero_grad()
                pred, _, _ = self.module(
                    batch.user_ids, batch.item_ids, self.slots, self.table
                )
                loss = nn.mse_loss(pred, batch.ratings)
                loss.backward()
                nn.clip_grad_norm(self.module.parameters(), 5.0)
                optimizer.step()
                total += float(loss.data)
                batches += 1
            record = {
                "epoch": epoch,
                "train_loss": total / max(batches, 1),
                "seconds": time.perf_counter() - start,
            }
            if test is not None:
                record["brmse"] = biased_rmse(
                    self.predict_subset(test), test.ratings, test.labels
                )
            self.history.append(record)
        return self

    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self.module is None:
            raise RuntimeError("NARRE is not fitted; call fit() first")
        self.module.eval()
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        out = np.empty(len(user_ids))
        for start in range(0, len(user_ids), 512):
            sl = slice(start, start + 512)
            pred, _, _ = self.module(user_ids[sl], item_ids[sl], self.slots, self.table)
            out[sl] = pred.data
        low, high = getattr(self, "_rating_range", (1.0, 5.0))
        return np.clip(out, low, high)

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        return self.predict(subset.user_ids, subset.item_ids)
