"""``repro.baselines`` — every comparison method from the paper.

Rating prediction (Table III): :class:`PMF`, :class:`DeepCoNN`,
:class:`NARRE`, :class:`DER`, plus :class:`RRRERating` adapters for
RRRE / RRRE⁻.

Reliability scoring (Tables IV-VI): :class:`ICWSM13`,
:class:`SpEaglePlus`, :class:`REV2`, plus :class:`RRREReliability`.
"""

from .base import RatingModel, ReliabilityModel
from .deepconn import DeepCoNN
from .der import DER
from .features import FEATURE_NAMES, review_features, standardize, suspicion_priors
from .graph import FraudEagle, build_review_graph, graph_statistics
from .icwsm13 import ICWSM13, LogisticRegression
from .narre import NARRE
from .pmf import PMF
from .rev2 import REV2
from .rrre_adapters import RRRERating, RRREReliability
from .speagle import SpEaglePlus
from .svdpp import SVDpp, TrustWeightedSVDpp

__all__ = [
    "DER",
    "DeepCoNN",
    "FEATURE_NAMES",
    "FraudEagle",
    "ICWSM13",
    "LogisticRegression",
    "NARRE",
    "PMF",
    "REV2",
    "SVDpp",
    "RRRERating",
    "RRREReliability",
    "RatingModel",
    "ReliabilityModel",
    "SpEaglePlus",
    "TrustWeightedSVDpp",
    "build_review_graph",
    "graph_statistics",
    "review_features",
    "standardize",
    "suspicion_priors",
]
