"""DeepCoNN (Zheng, Noroozi & Yu, WSDM 2017).

Joint deep modeling of users and items from review text: the user tower
is a text-CNN over the concatenation of all of the user's reviews, the
item tower likewise, and a factorization machine couples the two latent
vectors.  No attention, no reliability — the "all text is trustworthy"
baseline of Table III.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

import repro.nn as nn
from repro.nn import functional as F

from ..data import ReviewDataset, ReviewSubset, iter_batches
from ..metrics import biased_rmse
from ..text import pad_batch
from .base import RatingModel


class _DeepCoNNModule(nn.Module):
    """Two CNN towers + FM head."""

    def __init__(
        self,
        vocab_size: int,
        word_dim: int,
        num_filters: int,
        kernel_size: int,
        latent_dim: int,
        fm_factors: int,
        dropout: float,
        seed: int,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.word_embedding = nn.Embedding(vocab_size, word_dim, rng, padding_idx=0)
        self.user_cnn = nn.TextCNN(word_dim, num_filters, kernel_size, rng)
        self.item_cnn = nn.TextCNN(word_dim, num_filters, kernel_size, rng)
        self.user_fc = nn.Linear(num_filters, latent_dim, rng)
        self.item_fc = nn.Linear(num_filters, latent_dim, rng)
        self.fm = nn.FactorizationMachine(2 * latent_dim, fm_factors, rng)
        self.dropout = nn.Dropout(dropout, rng)

    def forward(self, user_docs: np.ndarray, item_docs: np.ndarray):
        x_u = self.user_fc(self.user_cnn(self.word_embedding(user_docs)))
        y_i = self.item_fc(self.item_cnn(self.word_embedding(item_docs)))
        z = self.dropout(F.concat([x_u, y_i], axis=-1))
        return self.fm(z)


class DeepCoNN(RatingModel):
    """DeepCoNN rating predictor.

    Parameters mirror the original at reduced scale; ``doc_len`` caps the
    concatenated review document per entity (latest reviews first).
    """

    name = "DeepCoNN"

    def __init__(
        self,
        word_dim: int = 16,
        num_filters: int = 32,
        kernel_size: int = 3,
        latent_dim: int = 16,
        fm_factors: int = 4,
        doc_len: int = 48,
        dropout: float = 0.1,
        lr: float = 0.004,
        weight_decay: float = 1e-5,
        batch_size: int = 128,
        epochs: int = 8,
        max_vocab: int = 4000,
        seed: int = 0,
    ) -> None:
        self.word_dim = word_dim
        self.num_filters = num_filters
        self.kernel_size = kernel_size
        self.latent_dim = latent_dim
        self.fm_factors = fm_factors
        self.doc_len = doc_len
        self.dropout = dropout
        self.lr = lr
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.max_vocab = max_vocab
        self.seed = seed
        self.module: Optional[_DeepCoNNModule] = None
        self.history: List[dict] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "DeepCoNN":
        rng = np.random.default_rng(self.seed)
        vocab = dataset.build_vocabulary(max_size=self.max_vocab)
        self._build_documents(dataset, train, vocab)

        self.module = _DeepCoNNModule(
            vocab_size=len(vocab),
            word_dim=self.word_dim,
            num_filters=self.num_filters,
            kernel_size=self.kernel_size,
            latent_dim=self.latent_dim,
            fm_factors=self.fm_factors,
            dropout=self.dropout,
            seed=self.seed,
        )
        optimizer = nn.Adam(
            self.module.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        self._rating_range = (float(train.ratings.min()), float(train.ratings.max()))
        self.history = []
        for epoch in range(1, self.epochs + 1):
            start = time.perf_counter()
            self.module.train()
            total, batches = 0.0, 0
            for batch in iter_batches(train, self.batch_size, shuffle=True, rng=rng):
                optimizer.zero_grad()
                pred = self._forward_pairs(batch.user_ids, batch.item_ids)
                loss = nn.mse_loss(pred, batch.ratings)
                loss.backward()
                nn.clip_grad_norm(self.module.parameters(), 5.0)
                optimizer.step()
                total += float(loss.data)
                batches += 1
            record = {
                "epoch": epoch,
                "train_loss": total / max(batches, 1),
                "seconds": time.perf_counter() - start,
            }
            if test is not None:
                record["brmse"] = biased_rmse(
                    self.predict_subset(test), test.ratings, test.labels
                )
            self.history.append(record)
        return self

    # ------------------------------------------------------------------
    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self.module is None:
            raise RuntimeError("DeepCoNN is not fitted; call fit() first")
        self.module.eval()
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        out = np.empty(len(user_ids))
        for start in range(0, len(user_ids), 512):
            sl = slice(start, start + 512)
            out[sl] = self._forward_pairs(user_ids[sl], item_ids[sl]).data
        low, high = getattr(self, "_rating_range", (1.0, 5.0))
        return np.clip(out, low, high)

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        return self.predict(subset.user_ids, subset.item_ids)

    # ------------------------------------------------------------------
    def _forward_pairs(self, user_ids: np.ndarray, item_ids: np.ndarray):
        return self.module(self._user_docs[user_ids], self._item_docs[item_ids])

    def _build_documents(self, dataset, train, vocab) -> None:
        """Concatenate each entity's training reviews into one document."""
        train_set = set(int(i) for i in train.index_array)

        def docs_for(groups) -> np.ndarray:
            documents = []
            for indices in groups:
                tokens: List[int] = []
                # Latest reviews first so truncation keeps fresh text.
                for idx in reversed([i for i in indices if i in train_set]):
                    tokens.extend(vocab.encode(dataset.tokens[idx]))
                    if len(tokens) >= self.doc_len:
                        break
                documents.append(tokens[: self.doc_len])
            ids, _ = pad_batch(documents, self.doc_len)
            return ids

        self._user_docs = docs_for(dataset.reviews_by_user)
        self._item_docs = docs_for(dataset.reviews_by_item)
