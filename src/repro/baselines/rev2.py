"""REV2 (Kumar et al., WSDM 2018): fairness / goodness / reliability.

An unsupervised fixed-point over three mutually recursive quantities:

* **F(u)** — fairness of user u in [0, 1];
* **G(i)** — goodness of item i in [-1, 1];
* **R(r)** — reliability of rating r in [0, 1]:

      R(r) = ( F(u) + 1 - |score(r) - G(i)| / 2 ) / 2
      G(i) = Σ_{r∈i} R(r) · score(r) / Σ_{r∈i} R(r)
      F(u) = Σ_{r∈u} R(r) / |r∈u|

with ratings normalized to ``score ∈ [-1, 1]`` and Laplace-style priors
(γ₁, γ₂) that shrink low-degree users/items toward neutral defaults —
REV2's cold-start treatment.  The review reliability R is the score the
paper compares against (Table IV-VI).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import ReliabilityModel


class REV2(ReliabilityModel):
    """Iterative fairness/goodness/reliability scoring.

    Parameters
    ----------
    gamma1 / gamma2:
        Laplace smoothing pseudo-counts for fairness and goodness.
    iterations:
        Maximum fixed-point sweeps.
    tol:
        Early-stop when the largest score change drops below this.
    """

    name = "REV2"

    def __init__(
        self,
        gamma1: float = 0.5,
        gamma2: float = 0.5,
        iterations: int = 50,
        tol: float = 1e-6,
    ) -> None:
        if gamma1 < 0 or gamma2 < 0:
            raise ValueError("gamma priors must be non-negative")
        self.gamma1 = gamma1
        self.gamma2 = gamma2
        self.iterations = iterations
        self.tol = tol
        self._reliability: Optional[np.ndarray] = None
        self.fairness: Optional[np.ndarray] = None
        self.goodness: Optional[np.ndarray] = None

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "REV2":
        users = dataset.user_ids
        items = dataset.item_ids
        lo, hi = dataset.ratings.min(), dataset.ratings.max()
        span = max(hi - lo, 1e-9)
        scores = 2.0 * (dataset.ratings - lo) / span - 1.0  # [-1, 1]

        n_users, n_items = dataset.num_users, dataset.num_items
        user_deg = np.maximum(dataset.user_degrees(), 1)
        item_deg = np.maximum(dataset.item_degrees(), 1)

        fairness = np.full(n_users, 1.0)
        goodness = np.full(n_items, 0.0)
        reliability = np.full(len(dataset), 1.0)

        for _ in range(self.iterations):
            prev = reliability
            # R(r)
            agreement = 1.0 - np.abs(scores - goodness[items]) / 2.0
            reliability = (fairness[users] + agreement) / 2.0
            # G(i) with goodness prior toward 0
            weighted = np.bincount(items, weights=reliability * scores, minlength=n_items)
            weights = np.bincount(items, weights=reliability, minlength=n_items)
            goodness = weighted / (weights + self.gamma2)
            goodness = np.clip(goodness, -1.0, 1.0)
            # F(u) with fairness prior toward the neutral 0.5
            sums = np.bincount(users, weights=reliability, minlength=n_users)
            fairness = (sums + self.gamma1 * 0.5) / (user_deg + self.gamma1)
            fairness = np.clip(fairness, 0.0, 1.0)
            if np.abs(reliability - prev).max() < self.tol:
                break

        self.fairness = fairness
        self.goodness = goodness
        self._reliability = reliability
        return self

    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        if self._reliability is None:
            raise RuntimeError("REV2 is not fitted; call fit() first")
        return self._reliability[subset.index_array]
