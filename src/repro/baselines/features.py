"""Behavioural / textual / temporal feature extraction for reviews.

The metadata features the fake-review literature relies on (Mukherjee et
al. ICWSM 2013; Rayana & Akoglu KDD 2015).  Every feature is computed per
review from the dataset alone (no labels), so the same matrix feeds the
supervised ICWSM13 classifier and the SpEagle(+) priors.

Features (one column each, standardized by :func:`standardize`):

1.  rating deviation from the item's mean rating
2.  absolute rating extremity (distance from 3)
3.  user review count (log)
4.  item review count (log)
5.  user rating variance
6.  user extremity share (fraction of the user's ratings at 1 or 5)
7.  burstiness: inverse time gap to the user's nearest other review
8.  item burstiness: local review density on the item around the time
9.  review length in tokens (log)
10. type-token ratio (vocabulary richness)
11. superlative density (``best``, ``worst``, ``ever``...)
12. duplicate count: how many other reviews share the exact text (log)
"""

from __future__ import annotations

from collections import Counter
import numpy as np

from ..data import ReviewDataset

SUPERLATIVES = frozenset(
    """best worst amazing incredible perfect horrible awful terrible ever
    never absolutely totally completely must avoid scam trust""".split()
)

FEATURE_NAMES = (
    "rating_deviation",
    "rating_extremity",
    "user_degree_log",
    "item_degree_log",
    "user_rating_var",
    "user_extremity_share",
    "user_burstiness",
    "item_burstiness",
    "length_log",
    "type_token_ratio",
    "superlative_density",
    "duplicate_log",
)


def review_features(dataset: ReviewDataset) -> np.ndarray:
    """Feature matrix ``(num_reviews, len(FEATURE_NAMES))`` (raw scale)."""
    n = len(dataset)
    features = np.zeros((n, len(FEATURE_NAMES)))

    item_mean = _grouped_mean(dataset.item_ids, dataset.ratings, dataset.num_items)
    user_var = _grouped_var(dataset.user_ids, dataset.ratings, dataset.num_users)
    user_extremity = _grouped_mean(
        dataset.user_ids,
        np.isin(dataset.ratings, (1.0, 5.0)).astype(np.float64),
        dataset.num_users,
    )
    user_deg = dataset.user_degrees()
    item_deg = dataset.item_degrees()

    duplicates = Counter(r.text for r in dataset.reviews)

    for idx, review in enumerate(dataset.reviews):
        tokens = dataset.tokens[idx]
        n_tokens = max(len(tokens), 1)
        features[idx, 0] = review.rating - item_mean[review.item_id]
        features[idx, 1] = abs(review.rating - 3.0)
        features[idx, 2] = np.log1p(user_deg[review.user_id])
        features[idx, 3] = np.log1p(item_deg[review.item_id])
        features[idx, 4] = user_var[review.user_id]
        features[idx, 5] = user_extremity[review.user_id]
        features[idx, 6] = _burstiness(dataset, idx, by_user=True)
        features[idx, 7] = _burstiness(dataset, idx, by_user=False)
        features[idx, 8] = np.log1p(len(tokens))
        features[idx, 9] = len(set(tokens)) / n_tokens
        features[idx, 10] = sum(t in SUPERLATIVES for t in tokens) / n_tokens
        features[idx, 11] = np.log1p(duplicates[review.text] - 1)
    return features


def standardize(features: np.ndarray) -> np.ndarray:
    """Zero-mean unit-variance columns (constant columns stay zero)."""
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    return (features - mean) / std


def suspicion_priors(dataset: ReviewDataset) -> np.ndarray:
    """Unsupervised per-review suspicion score in (0, 1).

    The SpEagle recipe: convert each feature to an empirical-CDF tail
    probability in its "suspicious" direction and average.  Higher means
    more likely fake.
    """
    features = review_features(dataset)
    # Direction of suspicion per feature: +1 high is suspicious, -1 low.
    directions = np.array([0, +1, -1, 0, 0, +1, +1, +1, -1, -1, +1, +1], dtype=float)
    n = len(dataset)
    scores = np.zeros(n)
    used = 0
    for col, direction in enumerate(directions):
        if direction == 0:
            continue
        ranks = _ecdf(features[:, col])
        scores += ranks if direction > 0 else (1.0 - ranks)
        used += 1
    # Rating deviation is suspicious in *magnitude*.
    scores += _ecdf(np.abs(features[:, 0]))
    used += 1
    return np.clip(scores / used, 1e-4, 1.0 - 1e-4)


def _grouped_mean(groups: np.ndarray, values: np.ndarray, size: int) -> np.ndarray:
    sums = np.bincount(groups, weights=values, minlength=size)
    counts = np.maximum(np.bincount(groups, minlength=size), 1)
    return sums / counts


def _grouped_var(groups: np.ndarray, values: np.ndarray, size: int) -> np.ndarray:
    mean = _grouped_mean(groups, values, size)
    sq = _grouped_mean(groups, values**2, size)
    return np.maximum(sq - mean**2, 0.0)


def _burstiness(dataset: ReviewDataset, idx: int, by_user: bool) -> float:
    """1/(1 + nearest-neighbour gap in days) within the entity's timeline."""
    review = dataset.reviews[idx]
    group = (
        dataset.reviews_by_user[review.user_id]
        if by_user
        else dataset.reviews_by_item[review.item_id]
    )
    if len(group) < 2:
        return 0.0
    times = dataset.timestamps[group]
    own = review.timestamp
    gaps = np.abs(times - own)
    gaps = gaps[gaps > 0] if (gaps > 0).any() else gaps
    return float(1.0 / (1.0 + gaps.min()))


def _ecdf(values: np.ndarray) -> np.ndarray:
    """Empirical CDF rank of each value in [0, 1]."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values))
    ranks[order] = np.arange(1, len(values) + 1)
    return ranks / (len(values) + 1)
