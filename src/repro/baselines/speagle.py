"""SpEagle+ (Rayana & Akoglu, KDD 2015): belief propagation + metadata.

SpEagle runs loopy belief propagation over the review network — users,
reviews, and items — with node priors derived from metadata features;
SpEagle+ additionally clamps the priors of a labelled subset (here: the
training reviews), making it semi-supervised.

The network is the natural chain-factor graph: every review node has
exactly two neighbours (its author and its product).  Sum-product
messages are computed in a fully vectorized sweep per iteration:

* user states  {honest, fraud}
* review states {genuine, fake}
* item states  {good, bad}

Edge potentials follow the FraudEagle signed-assumption: honest users
write genuine reviews; genuine positive reviews indicate good items;
fake positive reviews indicate *bad* items (the fraudster promotes what
does not deserve it), and symmetrically for negative reviews.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import ReliabilityModel
from .features import suspicion_priors

GENUINE, FAKE_STATE = 0, 1
HONEST, FRAUD = 0, 1
GOOD, BAD = 0, 1


class SpEaglePlus(ReliabilityModel):
    """Semi-supervised loopy BP over the review network.

    Parameters
    ----------
    epsilon:
        Potential softness (smaller → harder constraints).
    iterations:
        BP sweeps.
    damping:
        Message damping factor in [0, 1) for stability on loopy graphs.
    supervision:
        Fraction of the training labels used to clamp review priors
        (0.0 = unsupervised SpEagle).  The SpEagle+ paper uses small
        label budgets; 10% is its canonical setting and the default.
    use_metadata_priors:
        When False, review priors start uniform — the network-only
        FraudEagle configuration.
    """

    name = "SpEagle+"

    def __init__(
        self,
        epsilon: float = 0.15,
        iterations: int = 15,
        damping: float = 0.3,
        supervision: float = 0.1,
        use_metadata_priors: bool = True,
        seed: int = 0,
    ) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1), got {damping}")
        if not 0.0 <= supervision <= 1.0:
            raise ValueError(f"supervision must be in [0, 1], got {supervision}")
        self.epsilon = epsilon
        self.iterations = iterations
        self.damping = damping
        self.supervision = supervision
        self.use_metadata_priors = use_metadata_priors
        self.seed = seed
        self._beliefs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "SpEaglePlus":
        rng = np.random.default_rng(self.seed)
        n = len(dataset)
        users = dataset.user_ids
        items = dataset.item_ids
        positive = dataset.ratings >= 3.5  # edge sign

        # Priors ---------------------------------------------------------
        if self.use_metadata_priors:
            suspicion = suspicion_priors(dataset)  # P(fake)-ish
        else:
            suspicion = np.full(n, 0.5)  # FraudEagle: network only
        review_prior = np.stack([1.0 - suspicion, suspicion], axis=1)
        if self.supervision > 0:
            train_idx = train.index_array
            chosen = train_idx[rng.random(len(train_idx)) < self.supervision]
            clamped = np.zeros((len(chosen), 2))
            # label 1 = benign → genuine
            benign = train.parent.labels[chosen] == 1
            clamped[benign, GENUINE] = 1.0 - 1e-3
            clamped[benign, FAKE_STATE] = 1e-3
            clamped[~benign, GENUINE] = 1e-3
            clamped[~benign, FAKE_STATE] = 1.0 - 1e-3
            review_prior[chosen] = clamped

        user_prior = np.full((dataset.num_users, 2), 0.5)
        item_prior = np.full((dataset.num_items, 2), 0.5)

        eps = self.epsilon
        # A[user_state, review_state]
        pot_user = np.array([[1.0 - eps, eps], [0.25, 0.75]])
        # B[review_state, item_state] for a positive edge.
        pot_item_pos = np.array([[1.0 - eps, eps], [eps, 1.0 - eps]])
        pot_item_neg = pot_item_pos[:, ::-1].copy()
        pot_item = np.where(positive[:, None, None], pot_item_pos, pot_item_neg)

        # Messages (per review edge), initialized uniform.
        m_u_to_r = np.full((n, 2), 0.5)  # over review states
        m_i_to_r = np.full((n, 2), 0.5)
        m_r_to_u = np.full((n, 2), 0.5)  # over user states
        m_r_to_i = np.full((n, 2), 0.5)  # over item states

        for _ in range(self.iterations):
            # review → user : Σ_y φ_r(y) A(su, y) m_{i→r}(y)
            weighted = review_prior * m_i_to_r  # (n, 2) over review states
            new_r_to_u = weighted @ pot_user.T  # (n, 2) over user states
            # review → item : Σ_y φ_r(y) B_r(y, si) m_{u→r}(y)
            weighted = review_prior * m_u_to_r
            new_r_to_i = np.einsum("ny,nys->ns", weighted, pot_item)

            new_r_to_u = _normalize(new_r_to_u)
            new_r_to_i = _normalize(new_r_to_i)
            m_r_to_u = _damp(m_r_to_u, new_r_to_u, self.damping)
            m_r_to_i = _damp(m_r_to_i, new_r_to_i, self.damping)

            # user → review : Σ_su φ_u(su) Π_{r'≠r} m_{r'→u}(su) A(su, y)
            user_in = _leave_one_out_product(m_r_to_u, users, dataset.num_users)
            pre_u = _normalize(user_prior[users] * user_in)
            new_u_to_r = _normalize(pre_u @ pot_user)
            # item → review
            item_in = _leave_one_out_product(m_r_to_i, items, dataset.num_items)
            pre_i = _normalize(item_prior[items] * item_in)
            new_i_to_r = _normalize(np.einsum("ns,nys->ny", pre_i, pot_item))

            m_u_to_r = _damp(m_u_to_r, new_u_to_r, self.damping)
            m_i_to_r = _damp(m_i_to_r, new_i_to_r, self.damping)

        beliefs = _normalize(review_prior * m_u_to_r * m_i_to_r)
        self._beliefs = beliefs[:, GENUINE]
        return self

    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        if self._beliefs is None:
            raise RuntimeError("SpEagle+ is not fitted; call fit() first")
        return self._beliefs[subset.index_array]


def _normalize(messages: np.ndarray) -> np.ndarray:
    totals = messages.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return messages / totals


def _damp(old: np.ndarray, new: np.ndarray, damping: float) -> np.ndarray:
    return damping * old + (1.0 - damping) * new


def _leave_one_out_product(
    messages: np.ndarray, groups: np.ndarray, num_groups: int
) -> np.ndarray:
    """Π over the group's messages excluding each row's own (log-space)."""
    logs = np.log(np.clip(messages, 1e-12, None))
    totals = np.zeros((num_groups, messages.shape[1]))
    np.add.at(totals, groups, logs)
    loo = totals[groups] - logs
    # Subtract per-row max for stability before exponentiation.
    loo -= loo.max(axis=1, keepdims=True)
    return np.exp(loo)
