"""Adapters exposing RRRE (and the RRRE⁻ ablation) through the baseline
interfaces, so the experiment harness treats every model uniformly."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import RRREConfig, RRRETrainer, fast_config
from ..data import ReviewDataset, ReviewSubset
from .base import RatingModel, ReliabilityModel


class RRRERating(RatingModel):
    """RRRE as a Table III rating model (``biased=False`` gives RRRE⁻)."""

    def __init__(self, config: Optional[RRREConfig] = None, biased: bool = True) -> None:
        if config is None:
            config = fast_config()
        self.config = config
        self.config.biased_loss = biased
        self.trainer = RRRETrainer(self.config)
        self.name = "RRRE" if biased else "RRRE-"

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "RRRERating":
        self.trainer.fit(dataset, train, test=None)
        return self

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        ratings, _ = self.trainer.predict_subset(subset)
        return ratings


class RRREReliability(ReliabilityModel):
    """RRRE as a Table IV-VI reliability scorer."""

    name = "RRRE"

    def __init__(self, config: Optional[RRREConfig] = None) -> None:
        self.config = config or fast_config()
        self.trainer = RRRETrainer(self.config)

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "RRREReliability":
        self.trainer.fit(dataset, train, test=None)
        return self

    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        _, reliabilities = self.trainer.predict_subset(subset)
        return reliabilities
