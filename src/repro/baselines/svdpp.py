"""SVD++ and a trust-weighted variant (the paper's Sec II-C family).

The paper surveys trust-aware matrix-factorization recommenders
(TrustSVD and relatives) as the *other* road to reliable
recommendation.  This module provides:

* :class:`SVDpp` — Koren's SVD++: ratings + implicit feedback (the set
  of items a user touched) folded into the user factor;
* :class:`TrustWeightedSVDpp` — the implicit-feedback terms weighted by
  a per-review trust prior (here: the unsupervised suspicion scores of
  :mod:`repro.baselines.features`), a faithful miniature of how
  TrustSVD folds trust into factorization.  It is an *extension*
  comparison, not one of the paper's evaluated baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import RatingModel
from .features import suspicion_priors


class SVDpp(RatingModel):
    """SVD++ with SGD training.

    r̂_ui = μ + b_u + b_i + q_i · (p_u + |N(u)|^-1/2 Σ_{j∈N(u)} y_j)
    """

    name = "SVD++"

    def __init__(
        self,
        factors: int = 16,
        lr: float = 0.01,
        reg: float = 0.05,
        epochs: int = 20,
        seed: int = 0,
    ) -> None:
        if factors < 1:
            raise ValueError(f"factors must be >= 1, got {factors}")
        self.factors = factors
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.seed = seed
        self._fitted = False

    # ------------------------------------------------------------------
    def _implicit_weights(self, dataset: ReviewDataset, train: ReviewSubset) -> np.ndarray:
        """Per-review weight of the implicit-feedback contribution."""
        return np.ones(len(dataset))

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "SVDpp":
        rng = np.random.default_rng(self.seed)
        n_users, n_items = dataset.num_users, dataset.num_items
        self.user_factors = rng.normal(0, 0.1, (n_users, self.factors))
        self.item_factors = rng.normal(0, 0.1, (n_items, self.factors))
        self.implicit_factors = rng.normal(0, 0.1, (n_items, self.factors))
        self.user_bias = np.zeros(n_users)
        self.item_bias = np.zeros(n_items)
        self.global_mean = float(train.ratings.mean())

        weights = self._implicit_weights(dataset, train)
        train_set = set(int(i) for i in train.index_array)
        # N(u): (item, weight) pairs from the user's training reviews.
        self._neighbourhoods = []
        for user in range(n_users):
            pairs = [
                (dataset.item_ids[idx], weights[idx])
                for idx in dataset.reviews_by_user[user]
                if idx in train_set
            ]
            self._neighbourhoods.append(pairs)

        users, items, ratings = train.user_ids, train.item_ids, train.ratings
        order = np.arange(len(users))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for idx in order:
                u, i, r = int(users[idx]), int(items[idx]), ratings[idx]
                implicit, norm = self._implicit_vector(u)
                pu = self.user_factors[u]
                qi = self.item_factors[i]
                pred = (
                    self.global_mean
                    + self.user_bias[u]
                    + self.item_bias[i]
                    + qi @ (pu + implicit)
                )
                err = r - pred
                self.user_bias[u] += self.lr * (err - self.reg * self.user_bias[u])
                self.item_bias[i] += self.lr * (err - self.reg * self.item_bias[i])
                self.user_factors[u] += self.lr * (err * qi - self.reg * pu)
                self.item_factors[i] += self.lr * (err * (pu + implicit) - self.reg * qi)
                if norm > 0:
                    for j, w in self._neighbourhoods[u]:
                        yj = self.implicit_factors[j]
                        self.implicit_factors[j] += self.lr * (
                            err * (w / norm) * qi - self.reg * yj
                        )
        self._fitted = True
        return self

    def _implicit_vector(self, user: int):
        pairs = self._neighbourhoods[user]
        if not pairs:
            return np.zeros(self.factors), 0.0
        norm = np.sqrt(sum(w for _, w in pairs))
        if norm == 0:
            return np.zeros(self.factors), 0.0
        vec = np.zeros(self.factors)
        for j, w in pairs:
            vec += w * self.implicit_factors[j]
        return vec / norm, norm

    # ------------------------------------------------------------------
    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        out = np.empty(len(user_ids))
        for pos, (u, i) in enumerate(zip(user_ids, item_ids)):
            implicit, _ = self._implicit_vector(int(u))
            out[pos] = (
                self.global_mean
                + self.user_bias[u]
                + self.item_bias[i]
                + self.item_factors[i] @ (self.user_factors[u] + implicit)
            )
        return out

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        return self.predict(subset.user_ids, subset.item_ids)


class TrustWeightedSVDpp(SVDpp):
    """SVD++ whose implicit feedback is weighted by review trust priors.

    Reviews that look fraudulent (high unsupervised suspicion) barely
    contribute to the user's implicit profile — the TrustSVD idea with
    the trust signal coming from review reliability instead of a social
    network.
    """

    name = "TrustSVD++"

    def _implicit_weights(self, dataset: ReviewDataset, train: ReviewSubset) -> np.ndarray:
        return 1.0 - suspicion_priors(dataset)
