"""Review-network construction and analysis (networkx).

The network-based fraud literature (FraudEagle, SpEagle, REV2) views a
review platform as a signed bipartite user-item graph.  This module
builds that graph from a :class:`~repro.data.ReviewDataset` and exposes
the structural statistics those papers reason about — useful both for
analysis notebooks and for the :class:`FraudEagle` baseline below.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx
import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import ReliabilityModel
from .speagle import SpEaglePlus


def build_review_graph(dataset: ReviewDataset) -> nx.Graph:
    """Signed bipartite user-item multigraph collapsed to a simple graph.

    Nodes: ``("u", user_id)`` and ``("i", item_id)``.  Each edge carries
    the list of review indices behind it plus the mean rating sign.
    """
    graph = nx.Graph()
    for user in range(dataset.num_users):
        graph.add_node(("u", user), bipartite=0)
    for item in range(dataset.num_items):
        graph.add_node(("i", item), bipartite=1)
    for idx, review in enumerate(dataset.reviews):
        u, i = ("u", review.user_id), ("i", review.item_id)
        if graph.has_edge(u, i):
            graph[u][i]["reviews"].append(idx)
            graph[u][i]["ratings"].append(review.rating)
        else:
            graph.add_edge(u, i, reviews=[idx], ratings=[review.rating])
    for _, _, data in graph.edges(data=True):
        data["sign"] = 1 if float(np.mean(data["ratings"])) >= 3.5 else -1
    return graph


def graph_statistics(dataset: ReviewDataset) -> Dict[str, float]:
    """Structural summary of the review network.

    Reported: node/edge counts, density of the bipartite graph, the
    share of nodes in the largest connected component, and the mean
    positive-edge share — the quantities that predict whether
    graph-based detectors have signal to work with.
    """
    graph = build_review_graph(dataset)
    n_users, n_items = dataset.num_users, dataset.num_items
    components = list(nx.connected_components(graph))
    largest = max(components, key=len) if components else set()
    signs = [d["sign"] for _, _, d in graph.edges(data=True)]
    return {
        "users": float(n_users),
        "items": float(n_items),
        "edges": float(graph.number_of_edges()),
        "density": graph.number_of_edges() / max(n_users * n_items, 1),
        "components": float(len(components)),
        "largest_component_share": len(largest) / max(graph.number_of_nodes(), 1),
        "positive_edge_share": float(np.mean([s > 0 for s in signs])) if signs else 0.0,
    }


class FraudEagle(ReliabilityModel):
    """FraudEagle (Akoglu et al. 2013): fully *unsupervised* network BP.

    The paper's reference [16] — the precursor of SpEagle.  Equivalent
    to :class:`SpEaglePlus` with zero label supervision and uniform
    (metadata-free) priors; only the signed network structure is used.
    """

    name = "FraudEagle"

    def __init__(
        self, epsilon: float = 0.15, iterations: int = 15, damping: float = 0.3
    ) -> None:
        self._inner = SpEaglePlus(
            epsilon=epsilon,
            iterations=iterations,
            damping=damping,
            supervision=0.0,
            use_metadata_priors=False,
        )
        self._fitted = False

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "FraudEagle":
        self._inner.fit(dataset, train)
        self._fitted = True
        return self

    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("FraudEagle is not fitted; call fit() first")
        return self._inner.score_subset(subset)
