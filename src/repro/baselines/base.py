"""Shared interfaces for baseline models.

Two families, matching the paper's two evaluation tables:

* :class:`RatingModel` — predicts r̂_ui for review pairs (Table III).
* :class:`ReliabilityModel` — scores P(benign) per review (Tables IV-VI).

Both are duck-typed ABCs: the experiment harness only relies on
``fit`` + ``predict_subset`` / ``score_subset``.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset


class RatingModel(abc.ABC):
    """A model that predicts rating scores for (user, item) review pairs."""

    name: str = "rating-model"

    @abc.abstractmethod
    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "RatingModel":
        """Train on ``train`` (test is optional, for curve logging)."""

    @abc.abstractmethod
    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        """Predicted ratings aligned with ``subset``'s review order."""


class ReliabilityModel(abc.ABC):
    """A model that scores the probability each review is benign."""

    name: str = "reliability-model"

    @abc.abstractmethod
    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "ReliabilityModel":
        """Train/propagate using ``train`` supervision only."""

    @abc.abstractmethod
    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        """P(benign)-like scores aligned with ``subset``'s review order."""
