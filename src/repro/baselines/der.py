"""DER (Chen, Zhang & Qin, AAAI 2019) — dynamic explainable recommendation.

DER models *dynamic* user preferences: the user's review history is read
in time order by a gated recurrent unit so the latest state reflects the
current taste; the item side is a static profile.  This implementation
keeps that essential structure at reproduction scale:

* each review is embedded by masked mean pooling of word vectors
  (standing in for DER's sentence-level encoder);
* a time-aware GRU consumes the user's last ``s_u`` reviews in
  chronological order, with the time gap to the next review appended to
  the input (the Time-LSTM idea DER builds on);
* the item profile is the mean of its review embeddings;
* a factorization machine couples the two sides with ID embeddings.

Simplifications vs the original (documented in DESIGN.md): sentence-level
attention is dropped and the GRU is single-layer.  The paper itself notes
DER underperforms when users average <3 reviews — the regime both the
real corpora and the simulator are in — and that behaviour reproduces.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

import repro.nn as nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from ..data import InputSlots, ReviewDataset, ReviewSubset, ReviewTextTable, iter_batches
from ..metrics import biased_rmse
from .base import RatingModel


class _DerModule(nn.Module):
    """Mean-pooled review embeddings + time-aware GRU user tower."""

    def __init__(
        self,
        vocab_size: int,
        num_users: int,
        num_items: int,
        word_dim: int,
        review_dim: int,
        id_dim: int,
        fm_factors: int,
        dropout: float,
        seed: int,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.word_embedding = nn.Embedding(vocab_size, word_dim, rng, padding_idx=0)
        self.review_project = nn.Linear(word_dim, review_dim, rng)
        # +1 input channel: normalized time gap to the following review.
        self.gru = nn.GRU(review_dim + 1, review_dim, rng)
        self.user_id_embedding = nn.Embedding(num_users, id_dim, rng)
        self.item_id_embedding = nn.Embedding(num_items, id_dim, rng)
        self.user_out = nn.Linear(review_dim, id_dim, rng)
        self.item_out = nn.Linear(review_dim, id_dim, rng)
        self.fm = nn.FactorizationMachine(2 * id_dim, fm_factors, rng)
        self.dropout = nn.Dropout(dropout, rng)

    def embed_reviews(self, slot_matrix: np.ndarray, table: ReviewTextTable) -> Tensor:
        """Mean-pool word vectors of each slotted review → (B, s, review_dim)."""
        batch, s = slot_matrix.shape
        safe = np.maximum(slot_matrix.reshape(-1), 0)
        unique, inverse = np.unique(safe, return_inverse=True)
        vectors = self.word_embedding(table.token_ids[unique])  # (U, L, d)
        mask = table.token_mask[unique].astype(np.float64)[:, :, None]
        counts = np.maximum(mask.sum(axis=1), 1.0)
        pooled = F.sum(vectors * Tensor(mask), axis=1) * Tensor(1.0 / counts)
        projected = F.tanh(self.review_project(pooled))  # (U, review_dim)
        return F.take_rows(projected, inverse.reshape(batch, s))

    def forward(
        self,
        user_ids: np.ndarray,
        item_ids: np.ndarray,
        slots: InputSlots,
        table: ReviewTextTable,
        user_gaps: np.ndarray,
    ):
        # User tower: GRU over the chronological review sequence.
        u_slots = slots.user_slots[user_ids]
        u_mask = slots.user_slot_mask[user_ids]
        u_seq = self.embed_reviews(u_slots, table)  # (B, s_u, k)
        gaps = Tensor(user_gaps[user_ids][:, :, None])  # (B, s_u, 1)
        _, u_state = self.gru(F.concat([u_seq, gaps], axis=-1), u_mask)
        x_u = self.user_out(u_state)

        # Item tower: masked mean of review embeddings.
        i_slots = slots.item_slots[item_ids]
        i_mask = slots.item_slot_mask[item_ids].astype(np.float64)[:, :, None]
        i_seq = self.embed_reviews(i_slots, table)
        counts = np.maximum(i_mask.sum(axis=1), 1.0)
        y_i = self.item_out(F.sum(i_seq * Tensor(i_mask), axis=1) * Tensor(1.0 / counts))

        e_u = self.user_id_embedding(user_ids)
        e_i = self.item_id_embedding(item_ids)
        z = self.dropout(F.concat([e_u + x_u, e_i + y_i], axis=-1))
        return self.fm(z)


class DER(RatingModel):
    """Dynamic explainable recommendation baseline."""

    name = "DER"

    def __init__(
        self,
        word_dim: int = 16,
        review_dim: int = 24,
        id_dim: int = 8,
        fm_factors: int = 4,
        s_u: int = 5,
        s_i: int = 8,
        max_len: int = 14,
        dropout: float = 0.1,
        lr: float = 0.004,
        weight_decay: float = 1e-5,
        batch_size: int = 128,
        epochs: int = 8,
        max_vocab: int = 4000,
        seed: int = 0,
    ) -> None:
        self.word_dim = word_dim
        self.review_dim = review_dim
        self.id_dim = id_dim
        self.fm_factors = fm_factors
        self.s_u = s_u
        self.s_i = s_i
        self.max_len = max_len
        self.dropout = dropout
        self.lr = lr
        self.weight_decay = weight_decay
        self.batch_size = batch_size
        self.epochs = epochs
        self.max_vocab = max_vocab
        self.seed = seed
        self.module: Optional[_DerModule] = None
        self.history: List[dict] = []

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "DER":
        rng = np.random.default_rng(self.seed)
        self.table = ReviewTextTable.build(
            dataset, max_len=self.max_len, max_vocab=self.max_vocab
        )
        self.slots = InputSlots.build(train, s_u=self.s_u, s_i=self.s_i)
        self._user_gaps = self._time_gaps(dataset)
        self.module = _DerModule(
            vocab_size=len(self.table.vocab),
            num_users=dataset.num_users,
            num_items=dataset.num_items,
            word_dim=self.word_dim,
            review_dim=self.review_dim,
            id_dim=self.id_dim,
            fm_factors=self.fm_factors,
            dropout=self.dropout,
            seed=self.seed,
        )
        optimizer = nn.Adam(
            self.module.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        self._rating_range = (float(train.ratings.min()), float(train.ratings.max()))
        self.history = []
        for epoch in range(1, self.epochs + 1):
            start = time.perf_counter()
            self.module.train()
            total, batches = 0.0, 0
            for batch in iter_batches(train, self.batch_size, shuffle=True, rng=rng):
                optimizer.zero_grad()
                pred = self.module(
                    batch.user_ids, batch.item_ids, self.slots, self.table, self._user_gaps
                )
                loss = nn.mse_loss(pred, batch.ratings)
                loss.backward()
                nn.clip_grad_norm(self.module.parameters(), 5.0)
                optimizer.step()
                total += float(loss.data)
                batches += 1
            record = {
                "epoch": epoch,
                "train_loss": total / max(batches, 1),
                "seconds": time.perf_counter() - start,
            }
            if test is not None:
                record["brmse"] = biased_rmse(
                    self.predict_subset(test), test.ratings, test.labels
                )
            self.history.append(record)
        return self

    def predict(self, user_ids: np.ndarray, item_ids: np.ndarray) -> np.ndarray:
        if self.module is None:
            raise RuntimeError("DER is not fitted; call fit() first")
        self.module.eval()
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        out = np.empty(len(user_ids))
        for start in range(0, len(user_ids), 512):
            sl = slice(start, start + 512)
            pred = self.module(
                user_ids[sl], item_ids[sl], self.slots, self.table, self._user_gaps
            )
            out[sl] = pred.data
        low, high = getattr(self, "_rating_range", (1.0, 5.0))
        return np.clip(out, low, high)

    def predict_subset(self, subset: ReviewSubset) -> np.ndarray:
        return self.predict(subset.user_ids, subset.item_ids)

    # ------------------------------------------------------------------
    def _time_gaps(self, dataset: ReviewDataset) -> np.ndarray:
        """Per-slot normalized time gap to the user's next review."""
        horizon = max(float(dataset.timestamps.max() - dataset.timestamps.min()), 1.0)
        gaps = np.zeros((dataset.num_users, self.s_u))
        for user, slot_row in enumerate(self.slots.user_slots):
            # Skip padding (-1) and the virtual blank-review slot.
            times = [
                dataset.timestamps[idx] for idx in slot_row if 0 <= idx < len(dataset)
            ]
            for pos in range(len(times) - 1):
                gaps[user, pos] = (times[pos + 1] - times[pos]) / horizon
        return gaps
