"""ICWSM13 (Mukherjee et al. 2013): behavioural-feature classifier.

"What Yelp Fake Review Filter Might Be Doing" showed that behavioural
features (rating extremity, burstiness, activity, duplicate content...)
carry most of the signal Yelp's filter uses.  The reproduction trains an
L2-regularized logistic regression on the feature matrix of
:mod:`repro.baselines.features`, implemented directly in numpy
(full-batch gradient descent with an adaptive step).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import ReviewDataset, ReviewSubset
from .base import ReliabilityModel
from .features import review_features, standardize


class LogisticRegression:
    """Binary logistic regression with L2 penalty (numpy, full-batch GD)."""

    def __init__(self, reg: float = 1e-3, lr: float = 0.5, iterations: int = 300) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.reg = reg
        self.lr = lr
        self.iterations = iterations
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError(f"bad shapes: x {x.shape}, y {y.shape}")
        n, d = x.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        lr = self.lr
        prev_loss = np.inf
        for _ in range(self.iterations):
            p = self.predict_proba(x)
            grad_w = x.T @ (p - y) / n + self.reg * self.weights
            grad_b = float((p - y).mean())
            self.weights -= lr * grad_w
            self.bias -= lr * grad_b
            loss = self._loss(x, y)
            if loss > prev_loss:  # diverging → damp the step
                lr *= 0.5
            prev_loss = loss
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("LogisticRegression is not fitted")
        z = np.asarray(x) @ self.weights + self.bias
        return 0.5 * (1.0 + np.tanh(0.5 * z))

    def _loss(self, x: np.ndarray, y: np.ndarray) -> float:
        p = np.clip(self.predict_proba(x), 1e-12, 1 - 1e-12)
        data_term = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        return float(data_term + 0.5 * self.reg * (self.weights**2).sum())


class ICWSM13(ReliabilityModel):
    """Behavioural-feature reliability baseline."""

    name = "ICWSM13"

    def __init__(self, reg: float = 1e-3, iterations: int = 300) -> None:
        self.reg = reg
        self.iterations = iterations
        self._classifier: Optional[LogisticRegression] = None
        self._features: Optional[np.ndarray] = None

    def fit(
        self,
        dataset: ReviewDataset,
        train: ReviewSubset,
        test: Optional[ReviewSubset] = None,
    ) -> "ICWSM13":
        self._features = standardize(review_features(dataset))
        x = self._features[train.index_array]
        y = train.labels.astype(np.float64)  # 1 = benign
        self._classifier = LogisticRegression(
            reg=self.reg, iterations=self.iterations
        ).fit(x, y)
        return self

    def score_subset(self, subset: ReviewSubset) -> np.ndarray:
        if self._classifier is None or self._features is None:
            raise RuntimeError("ICWSM13 is not fitted; call fit() first")
        return self._classifier.predict_proba(self._features[subset.index_array])
