"""``repro.text`` — tokenization, vocabulary, and pretrained word vectors."""

from .embeddings import cosine_similarity, most_similar, train_ppmi_svd, train_skipgram
from .pad import pad_batch, pad_document
from .tokenize import STOP_WORDS, tokenize, tokenize_corpus
from .vocab import PAD_ID, PAD_TOKEN, UNK_ID, UNK_TOKEN, Vocabulary

__all__ = [
    "PAD_ID",
    "PAD_TOKEN",
    "STOP_WORDS",
    "UNK_ID",
    "UNK_TOKEN",
    "Vocabulary",
    "cosine_similarity",
    "most_similar",
    "pad_batch",
    "pad_document",
    "tokenize",
    "tokenize_corpus",
    "train_ppmi_svd",
    "train_skipgram",
]
