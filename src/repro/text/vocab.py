"""Vocabulary: token ↔ integer id mapping with frequency-based pruning.

Id 0 is reserved for padding and id 1 for unknown tokens, matching the
``padding_idx=0`` convention of :class:`repro.nn.Embedding`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
PAD_ID = 0
UNK_ID = 1


class Vocabulary:
    """Immutable token↔id map built from a tokenized corpus.

    Parameters
    ----------
    documents:
        Iterable of token lists.
    min_count:
        Drop tokens seen fewer than this many times.
    max_size:
        Keep at most this many tokens (most frequent first), not counting
        the two reserved slots.
    """

    def __init__(
        self,
        documents: Iterable[Sequence[str]],
        min_count: int = 1,
        max_size: Optional[int] = None,
    ) -> None:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts = Counter()
        for doc in documents:
            counts.update(doc)
        # Most frequent first; ties broken alphabetically for determinism.
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = [tok for tok, c in ranked if c >= min_count]
        if max_size is not None:
            kept = kept[:max_size]
        self._id_to_token: List[str] = [PAD_TOKEN, UNK_TOKEN] + kept
        self._token_to_id: Dict[str, int] = {
            tok: idx for idx, tok in enumerate(self._id_to_token)
        }
        self._counts = counts

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        """Map a token to its id (UNK_ID when unseen)."""
        return self._token_to_id.get(token, UNK_ID)

    def id_to_token(self, idx: int) -> str:
        """Map an id back to its token string."""
        return self._id_to_token[idx]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map a token sequence to ids."""
        get = self._token_to_id.get
        return [get(t, UNK_ID) for t in tokens]

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Map ids back to tokens."""
        return [self._id_to_token[i] for i in ids]

    def count(self, token: str) -> int:
        """Corpus frequency of ``token`` (0 when unseen)."""
        return self._counts.get(token, 0)

    @property
    def tokens(self) -> List[str]:
        """All tokens including the reserved pad/unk entries."""
        return list(self._id_to_token)
