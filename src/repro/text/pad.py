"""Padding / truncation of encoded documents to fixed length."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .vocab import PAD_ID


def pad_document(ids: Sequence[int], length: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pad or truncate one id sequence to ``length``.

    Returns ``(ids, mask)`` — mask True marks real tokens.  An empty
    document yields one fake "real" position so downstream softmaxes over
    the mask remain well-defined (its embedding is the zero pad vector).
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    ids = list(ids)[:length]
    mask = np.zeros(length, dtype=bool)
    mask[: len(ids)] = True
    if not ids:
        mask[0] = True
    out = np.full(length, PAD_ID, dtype=np.int64)
    out[: len(ids)] = ids
    return out, mask


def pad_batch(documents: Sequence[Sequence[int]], length: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pad a batch of id sequences to ``(batch, length)`` plus mask."""
    ids = np.full((len(documents), length), PAD_ID, dtype=np.int64)
    mask = np.zeros((len(documents), length), dtype=bool)
    for row, doc in enumerate(documents):
        ids[row], mask[row] = pad_document(doc, length)
    return ids, mask
