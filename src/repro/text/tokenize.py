"""Lightweight tokenization for review text.

The paper pretrains word vectors over raw review text; this module
provides the deterministic, dependency-free tokenizer the whole pipeline
shares (simulator output, loaders for real data, and the encoders).
"""

from __future__ import annotations

import re
from typing import Iterable, List

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")

# A tiny English stop list — enough to drop glue words without an NLP
# dependency.  Kept deliberately short: review sentiment words must stay.
STOP_WORDS = frozenset(
    """a an the and or but if of at by for with to from in on is are was were
    be been being it its this that these those i you he she we they my your
    as so do did does done have has had there then than""".split()
)


def tokenize(text: str, drop_stop_words: bool = False) -> List[str]:
    """Lowercase and split ``text`` into word tokens.

    Keeps alphanumerics and apostrophes (``don't`` stays one token).
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    if drop_stop_words:
        tokens = [t for t in tokens if t not in STOP_WORDS]
    return tokens


def tokenize_corpus(texts: Iterable[str], drop_stop_words: bool = False) -> List[List[str]]:
    """Tokenize every document in ``texts``."""
    return [tokenize(t, drop_stop_words=drop_stop_words) for t in texts]
