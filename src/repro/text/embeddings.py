"""Pretrained word vectors (Sec IV-A: "textual content is pretrained").

Two trainers are provided:

* :func:`train_skipgram` — skip-gram with negative sampling (Mikolov
  2013), implemented directly in numpy (no autograd needed; the SGNS
  gradient is closed-form).  This is the default for model pipelines.
* :func:`train_ppmi_svd` — positive PMI co-occurrence matrix factorised
  with truncated SVD (Levy & Goldberg 2014).  Deterministic, fast, used
  for quick experiments and as a cross-check.

Both return a ``(len(vocab), dim)`` matrix aligned to the vocabulary ids
(rows 0/1 are the pad/unk vectors; pad stays zero).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import svds

from .vocab import PAD_ID, UNK_ID, Vocabulary


def train_skipgram(
    documents: Sequence[Sequence[str]],
    vocab: Vocabulary,
    dim: int = 64,
    window: int = 4,
    negatives: int = 5,
    epochs: int = 2,
    lr: float = 0.025,
    seed: int = 0,
) -> np.ndarray:
    """Train skip-gram-with-negative-sampling vectors.

    Parameters mirror word2vec defaults scaled down for review-sized
    corpora.  Negative samples are drawn from the unigram^0.75
    distribution.  Training is plain SGD over (center, context) pairs.
    """
    rng = np.random.default_rng(seed)
    encoded = [vocab.encode(doc) for doc in documents]

    vocab_size = len(vocab)
    # Unigram^0.75 negative-sampling table.
    freqs = np.array(
        [max(vocab.count(vocab.id_to_token(i)), 1) for i in range(vocab_size)],
        dtype=np.float64,
    )
    freqs[PAD_ID] = 0.0
    probs = freqs**0.75
    probs /= probs.sum()

    center_vecs = (rng.random((vocab_size, dim)) - 0.5) / dim
    context_vecs = np.zeros((vocab_size, dim))

    pairs = _build_pairs(encoded, window)
    if len(pairs) == 0:
        center_vecs[PAD_ID] = 0.0
        return center_vecs

    for epoch in range(epochs):
        order = rng.permutation(len(pairs))
        neg_samples = rng.choice(vocab_size, size=(len(pairs), negatives), p=probs)
        step_lr = lr * (1.0 - epoch / max(epochs, 1)) + 1e-4
        for row, pair_idx in enumerate(order):
            center, context = pairs[pair_idx]
            targets = np.concatenate(([context], neg_samples[row]))
            labels = np.zeros(len(targets))
            labels[0] = 1.0
            v = center_vecs[center]
            u = context_vecs[targets]  # (1+neg, dim)
            scores = 1.0 / (1.0 + np.exp(-(u @ v)))
            gradient = (scores - labels)[:, None]  # (1+neg, 1)
            grad_v = (gradient * u).sum(axis=0)
            context_vecs[targets] -= step_lr * gradient * v[None, :]
            center_vecs[center] -= step_lr * grad_v

    center_vecs[PAD_ID] = 0.0
    return center_vecs


def train_ppmi_svd(
    documents: Sequence[Sequence[str]],
    vocab: Vocabulary,
    dim: int = 64,
    window: int = 4,
) -> np.ndarray:
    """Factorize the positive-PMI co-occurrence matrix with truncated SVD."""
    encoded = [vocab.encode(doc) for doc in documents]
    vocab_size = len(vocab)
    pairs = _build_pairs(encoded, window)

    vectors = np.zeros((vocab_size, dim))
    if len(pairs) == 0:
        return vectors

    rows = pairs[:, 0]
    cols = pairs[:, 1]
    data = np.ones(len(pairs))
    cooc = coo_matrix((data, (rows, cols)), shape=(vocab_size, vocab_size)).tocsr()
    cooc = (cooc + cooc.T) * 0.5

    total = cooc.sum()
    row_sums = np.asarray(cooc.sum(axis=1)).ravel()
    col_sums = np.asarray(cooc.sum(axis=0)).ravel()

    cooc = cooc.tocoo()
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(
            (cooc.data * total) / (row_sums[cooc.row] * col_sums[cooc.col])
        )
    pmi = np.maximum(pmi, 0.0)
    keep = pmi > 0
    ppmi = coo_matrix(
        (pmi[keep], (cooc.row[keep], cooc.col[keep])), shape=(vocab_size, vocab_size)
    )

    k = min(dim, min(ppmi.shape) - 1)
    if k < 1 or ppmi.nnz == 0:
        return vectors
    u, s, _ = svds(ppmi.tocsc(), k=k)
    vectors[:, :k] = u * np.sqrt(s)[None, :]
    vectors[PAD_ID] = 0.0
    return vectors


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0 when either is zero)."""
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0:
        return 0.0
    return float(a @ b / norm)


def most_similar(
    vectors: np.ndarray, vocab: Vocabulary, token: str, top_k: int = 5
) -> List[tuple]:
    """Nearest neighbours of ``token`` in the embedding space."""
    idx = vocab.token_to_id(token)
    query = vectors[idx]
    norms = np.linalg.norm(vectors, axis=1)
    norms[norms == 0] = 1.0
    scores = vectors @ query / (norms * max(np.linalg.norm(query), 1e-12))
    scores[[PAD_ID, UNK_ID, idx]] = -np.inf
    best = np.argsort(-scores)[:top_k]
    return [(vocab.id_to_token(i), float(scores[i])) for i in best]


def _build_pairs(encoded: Sequence[Sequence[int]], window: int) -> np.ndarray:
    """All (center, context) id pairs within ``window``; pads/unks skipped."""
    pairs = []
    for doc in encoded:
        ids = [i for i in doc if i not in (PAD_ID, UNK_ID)]
        for pos, center in enumerate(ids):
            lo = max(0, pos - window)
            hi = min(len(ids), pos + window + 1)
            for ctx_pos in range(lo, hi):
                if ctx_pos != pos:
                    pairs.append((center, ids[ctx_pos]))
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)
