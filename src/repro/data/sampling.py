"""Input-layer assembly: time-based review sampling and token tables.

Sec III-D of the paper: the number of reviews fed to UserNet/ItemNet is a
fixed hyper-parameter (s_u / s_i).  When an entity has more reviews than
slots, RRRE keeps the *latest* ones ("users' preferences change over time
and the latest preference is more useful"); when it has fewer, the rest
are zero-padded and masked.

Two artefacts are produced once per (dataset, configuration) and shared
by every model:

* :class:`ReviewTextTable` — an ``(N, L)`` token-id matrix over all
  reviews plus its mask;
* :class:`InputSlots` — per-user and per-item review-slot matrices built
  from the *training* reviews only (test reviews must not leak into the
  profiles used to predict them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..text import Vocabulary, pad_batch
from .review import ReviewDataset, ReviewSubset


@dataclass
class ReviewTextTable:
    """Fixed-length token ids for every review in a dataset.

    The table carries one extra virtual row after the real reviews — the
    *blank review* (all padding) — which cold-start entities' slots point
    at, so every slot index the models gather is valid.

    Attributes
    ----------
    token_ids:
        ``(num_reviews + 1, max_len)`` int64, padded with PAD_ID; the
        last row is the blank review.
    token_mask:
        Same shape, bool; True marks real tokens (the blank row keeps one
        True position so sequence models stay well-defined).
    vocab:
        The vocabulary used for encoding.
    """

    token_ids: np.ndarray
    token_mask: np.ndarray
    vocab: Vocabulary

    @property
    def max_len(self) -> int:
        return self.token_ids.shape[1]

    @property
    def blank_index(self) -> int:
        """Index of the virtual all-padding review (the last row)."""
        return self.token_ids.shape[0] - 1

    @classmethod
    def build(
        cls,
        dataset: ReviewDataset,
        max_len: int = 24,
        vocab: Optional[Vocabulary] = None,
        min_count: int = 1,
        max_vocab: Optional[int] = None,
    ) -> "ReviewTextTable":
        """Tokenize and pad every review of ``dataset`` to ``max_len``."""
        if vocab is None:
            vocab = dataset.build_vocabulary(min_count=min_count, max_size=max_vocab)
        encoded = [vocab.encode(tokens) for tokens in dataset.tokens]
        encoded.append([])  # the blank review
        ids, mask = pad_batch(encoded, max_len)
        return cls(token_ids=ids, token_mask=mask, vocab=vocab)


@dataclass
class InputSlots:
    """Per-entity review slots (the UserNet/ItemNet input layer).

    Slot value ``-1`` marks zero padding.  ``user_slot_items`` /
    ``item_slot_users`` give the counterpart entity id of each slot
    (needed by the fraud-attention's ID channels); padded slots carry 0
    and are masked.
    """

    user_slots: np.ndarray  # (num_users, s_u) review index or -1
    user_slot_mask: np.ndarray  # (num_users, s_u) bool
    user_slot_items: np.ndarray  # (num_users, s_u) item id (0 when padded)
    item_slots: np.ndarray  # (num_items, s_i)
    item_slot_mask: np.ndarray
    item_slot_users: np.ndarray

    @property
    def s_u(self) -> int:
        return self.user_slots.shape[1]

    @property
    def s_i(self) -> int:
        return self.item_slots.shape[1]

    @classmethod
    def build(
        cls,
        train: ReviewSubset,
        s_u: int,
        s_i: int,
    ) -> "InputSlots":
        """Assemble slots from a *training* subset.

        For each user (item), the ``min(s, |W|)`` latest training reviews
        fill the slots in chronological order; the rest are padding.
        Cold-start entities (no training review) point their first slot
        at the table's blank review — their profile degenerates to the
        "empty text" encoding plus the ID embedding.
        """
        if s_u < 1 or s_i < 1:
            raise ValueError(f"slot sizes must be >= 1, got s_u={s_u}, s_i={s_i}")
        parent = train.parent
        blank_index = len(parent)  # ReviewTextTable's virtual blank row
        train_set = set(int(i) for i in train.index_array)

        def assemble(groups: Sequence[Sequence[int]], s: int, counterpart: np.ndarray):
            n = len(groups)
            slots = np.full((n, s), -1, dtype=np.int64)
            mask = np.zeros((n, s), dtype=bool)
            others = np.zeros((n, s), dtype=np.int64)
            for entity, indices in enumerate(groups):
                kept = [idx for idx in indices if idx in train_set][-s:]
                if not kept:
                    slots[entity, 0] = blank_index
                    mask[entity, 0] = True
                    continue
                slots[entity, : len(kept)] = kept
                mask[entity, : len(kept)] = True
                others[entity, : len(kept)] = counterpart[kept]
            return slots, mask, others

        user_slots, user_mask, user_items = assemble(
            parent.reviews_by_user, s_u, parent.item_ids
        )
        item_slots, item_mask, item_users = assemble(
            parent.reviews_by_item, s_i, parent.user_ids
        )
        return cls(
            user_slots=user_slots,
            user_slot_mask=user_mask,
            user_slot_items=user_items,
            item_slots=item_slots,
            item_slot_mask=item_mask,
            item_slot_users=item_users,
        )
