"""Dataset presets mirroring Table II of the paper (scaled for CPU).

Scale note: the real corpora range from 49k to 609k reviews; the presets
keep the *shape* (fake fraction, user/item degree structure, fraud
account behaviour, relative ordering of sizes) at roughly 1/30 – 1/150
scale so that every model in the benchmark suite trains in seconds on
one CPU core.  Pass ``scale`` > 1.0 to grow a preset when more fidelity
is wanted.

| preset  | paper reviews | fake% | paper items | paper users | shape            |
|---------|---------------|-------|-------------|-------------|------------------|
| yelpchi | 67,395        | 13.23 | 201         | 38,063      | few busy items, singleton spam accounts |
| yelpnyc | 359,052       | 10.27 | 923         | 160,225     | larger, sparser  |
| yelpzip | 608,598       | 13.22 | 5,044       | 260,277     | largest          |
| musics  | 70,170        | 24.93 | 24,639      | 16,296      | many quiet items, repeat spam accounts |
| cds     | 49,085        | 22.39 | 26,290      | 23,572      | many quiet items, repeat spam accounts |

The Yelp presets use ``fraud_reuse≈2`` with single-item campaigns (throwaway accounts — degree
features and graph methods starve, as the paper observes for REV2 on
Yelp), while the Amazon presets use ``fraud_reuse≈4`` (repeat offenders,
where behaviour- and graph-based methods recover).
"""

from __future__ import annotations

from typing import Dict

from repro.obs.trace import maybe_span

from .review import ReviewDataset
from .synthetic import PlatformConfig, generate_platform

#: Paper-reported statistics (Table II) for reference and reporting.
PAPER_STATISTICS: Dict[str, Dict[str, float]] = {
    "yelpchi": {"reviews": 67395, "fake_fraction": 0.1323, "items": 201, "users": 38063},
    "yelpnyc": {"reviews": 359052, "fake_fraction": 0.1027, "items": 923, "users": 160225},
    "yelpzip": {"reviews": 608598, "fake_fraction": 0.1322, "items": 5044, "users": 260277},
    "musics": {"reviews": 70170, "fake_fraction": 0.2493, "items": 24639, "users": 16296},
    "cds": {"reviews": 49085, "fake_fraction": 0.2239, "items": 26290, "users": 23572},
}

_PRESETS: Dict[str, PlatformConfig] = {
    # Yelp: restaurants; few items each with many reviews; users sparse;
    # spam from throwaway accounts in moderately long windows.
    "yelpchi": PlatformConfig(
        name="yelpchi",
        domain="restaurants",
        num_items=40,
        num_benign_users=850,
        num_reviews=2200,
        fake_fraction=0.1323,
        item_popularity_alpha=0.9,
        user_activity_alpha=1.2,
        campaign_size_mean=12.0,
        fraud_reuse=2.0,
        burst_days=180.0,
    ),
    "yelpnyc": PlatformConfig(
        name="yelpnyc",
        domain="restaurants",
        num_items=90,
        num_benign_users=1500,
        num_reviews=3400,
        fake_fraction=0.1027,
        item_popularity_alpha=1.0,
        user_activity_alpha=1.2,
        campaign_size_mean=10.0,
        fraud_reuse=2.0,
        burst_days=180.0,
    ),
    "yelpzip": PlatformConfig(
        name="yelpzip",
        domain="restaurants",
        num_items=160,
        num_benign_users=2100,
        num_reviews=4400,
        fake_fraction=0.1322,
        item_popularity_alpha=1.0,
        user_activity_alpha=1.3,
        campaign_size_mean=11.0,
        fraud_reuse=2.0,
        burst_days=180.0,
    ),
    # Amazon: music; many items, each with few reviews; repeat spam accounts.
    "musics": PlatformConfig(
        name="musics",
        domain="music",
        num_items=1300,
        num_benign_users=850,
        num_reviews=4000,
        fake_fraction=0.2493,
        item_popularity_alpha=0.35,
        user_activity_alpha=0.9,
        campaign_size_mean=2.0,
        fraud_reuse=4.0,
        fraud_popularity_boost=2.5,
        strategic_polarity=False,
        burst_days=90.0,
    ),
    "cds": PlatformConfig(
        name="cds",
        domain="music",
        num_items=1400,
        num_benign_users=1050,
        num_reviews=3400,
        fake_fraction=0.2239,
        item_popularity_alpha=0.35,
        user_activity_alpha=0.9,
        campaign_size_mean=2.0,
        fraud_reuse=4.0,
        fraud_popularity_boost=2.5,
        strategic_polarity=False,
        burst_days=90.0,
    ),
}

DATASET_NAMES = tuple(_PRESETS)


def preset_config(name: str, seed: int = 0, scale: float = 1.0) -> PlatformConfig:
    """Return the :class:`PlatformConfig` for a named preset.

    ``scale`` multiplies populations and review counts (≥ 0.1).
    """
    if name not in _PRESETS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(_PRESETS)}")
    if scale < 0.1:
        raise ValueError(f"scale must be >= 0.1, got {scale}")
    base = _PRESETS[name]
    return PlatformConfig(
        name=base.name,
        domain=base.domain,
        num_items=max(2, int(base.num_items * scale)),
        num_benign_users=max(2, int(base.num_benign_users * scale)),
        num_reviews=max(10, int(base.num_reviews * scale)),
        fake_fraction=base.fake_fraction,
        item_popularity_alpha=base.item_popularity_alpha,
        user_activity_alpha=base.user_activity_alpha,
        campaign_size_mean=base.campaign_size_mean,
        fraud_reuse=base.fraud_reuse,
        fraud_popularity_boost=base.fraud_popularity_boost,
        strategic_polarity=base.strategic_polarity,
        fake_uplift=base.fake_uplift,
        camouflage_rate=base.camouflage_rate,
        horizon_days=base.horizon_days,
        burst_days=base.burst_days,
        rating_noise=base.rating_noise,
        aspect_strength=base.aspect_strength,
        text_confusion=base.text_confusion,
        seed=seed,
    )


def load_dataset(name: str, seed: int = 0, scale: float = 1.0, return_truth: bool = False):
    """Generate a preset dataset (the simulator analogue of downloading it)."""
    with maybe_span("data.load_dataset", kind="data", dataset=name, scale=scale):
        config = preset_config(name, seed=seed, scale=scale)
        return generate_platform(config, return_truth=return_truth)


def load_all(seed: int = 0, scale: float = 1.0) -> Dict[str, ReviewDataset]:
    """Generate all five presets keyed by name."""
    return {name: load_dataset(name, seed=seed, scale=scale) for name in _PRESETS}
