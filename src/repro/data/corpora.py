"""Synthetic review language.

The public Yelp/Amazon corpora are unavailable offline, so the simulator
writes its own reviews.  What matters for the reproduction is not
literary quality but the *statistical signals* the models exploit:

* benign text reflects aspect-level sentiment — which aspects a user
  mentions reveals their preferences, and the polarity toward an aspect
  reveals the item's quality on it;
* fake text is generic, hyperbolic, template-heavy and weakly tied to
  the item — the distributional tells content-based detectors (and
  RRRE's BiLSTM) learn from real opinion spam;
* a ``confusion`` knob keeps substantial vocabulary overlap between the
  populations so the task stays non-trivial.

Each domain (restaurants for Yelp presets, music for Amazon presets)
contributes aspect nouns and domain flavour words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Phrase banks
# ---------------------------------------------------------------------------

_POSITIVE_OPINIONS = [
    "really enjoyed the {aspect}",
    "the {aspect} was excellent",
    "great {aspect} and friendly staff",
    "loved the {aspect} here",
    "the {aspect} exceeded my expectations",
    "impressive {aspect} worth the price",
    "such a pleasant surprise with the {aspect}",
    "the {aspect} was fresh and well done",
    "solid {aspect} every single visit",
    "wonderful {aspect} and quick service",
]

_NEGATIVE_OPINIONS = [
    "the {aspect} was disappointing",
    "terrible {aspect} and slow service",
    "the {aspect} felt overpriced",
    "would not recommend the {aspect}",
    "the {aspect} was bland and cold",
    "poor {aspect} ruined the evening",
    "the {aspect} did not live up to the hype",
    "mediocre {aspect} at best",
    "the {aspect} was a letdown",
    "frustrating experience with the {aspect}",
]

_NEUTRAL_FILLERS = [
    "came here with friends on a weekend",
    "stopped by after work",
    "my second time visiting",
    "ordered the usual",
    "it was fairly busy that day",
    "parking was easy to find",
    "the place was clean",
    "staff seemed busy",
    "prices are about average for the area",
    "located close to downtown",
]

# Fake reviews: short, generic, superlative, weak item grounding.  The
# phrasing is built combinatorially (intensifier × adjective × call to
# action) so fakes share vocabulary and style without being verbatim
# duplicates — real spam farms rewrite templates just enough to dodge
# exact-match filters.
_FAKE_INTENSIFIERS = ["absolutely", "simply", "totally", "honestly", "truly", "really"]

_FAKE_PROMOTE_ADJ = ["amazing", "incredible", "perfect", "fantastic", "outstanding"]
_FAKE_PROMOTE_CLAIMS = [
    "best place ever",
    "five stars hands down",
    "you will love it",
    "nothing else compares",
    "best choice in town",
    "everyone should come here",
]
_FAKE_PROMOTE = [
    f"{i} {a} {c}"
    for i in _FAKE_INTENSIFIERS
    for a in _FAKE_PROMOTE_ADJ
    for c in _FAKE_PROMOTE_CLAIMS
]

_FAKE_DEMOTE_ADJ = ["horrible", "awful", "terrible", "disgusting", "worthless"]
_FAKE_DEMOTE_CLAIMS = [
    "worst place ever",
    "avoid at all costs",
    "stay far away",
    "complete waste of money",
    "never coming back",
    "do not trust the hype",
]
_FAKE_DEMOTE = [
    f"{i} {a} {c}"
    for i in _FAKE_INTENSIFIERS
    for a in _FAKE_DEMOTE_ADJ
    for c in _FAKE_DEMOTE_CLAIMS
]


@dataclass(frozen=True)
class Domain:
    """A review domain: aspect nouns + flavour tokens for item names."""

    name: str
    aspects: Sequence[str]
    item_nouns: Sequence[str]

    @property
    def num_aspects(self) -> int:
        return len(self.aspects)


RESTAURANTS = Domain(
    name="restaurants",
    aspects=(
        "food", "pizza", "noodles", "burger", "dessert", "coffee", "menu",
        "service", "atmosphere", "brunch", "cocktails", "portions",
    ),
    item_nouns=("grill", "bistro", "cafe", "diner", "kitchen", "bar", "house"),
)

MUSIC = Domain(
    name="music",
    aspects=(
        "album", "vocals", "guitar", "production", "lyrics", "melody",
        "drums", "mixing", "tracklist", "sound", "arrangement", "chorus",
    ),
    item_nouns=("record", "album", "session", "collection", "anthology"),
)


class ReviewWriter:
    """Generates review text conditioned on aspect sentiment and reliability.

    Parameters
    ----------
    domain:
        The aspect/noun bank to draw from.
    rng:
        Seeded generator; all sampling flows through it.
    confusion:
        How often each population borrows the other's phrasing: at 0 the
        populations are textually separable (detector AUC saturates);
        realistic values (0.2-0.45) leave the overlap real detectors
        face.
    """

    def __init__(
        self, domain: Domain, rng: np.random.Generator, confusion: float = 0.3
    ) -> None:
        if not 0.0 <= confusion <= 1.0:
            raise ValueError(f"confusion must be in [0, 1], got {confusion}")
        self.domain = domain
        self.confusion = confusion
        self._rng = rng

    def benign_review(
        self,
        rating: float,
        aspect_mentions: Sequence[Tuple[int, bool]] = (),
    ) -> str:
        """Write a benign review.

        ``aspect_mentions`` is a list of ``(aspect_index, positive)``
        pairs the review should discuss (how the simulator leaks the
        item's aspect quality and the user's cared aspects into text).
        When empty, aspects are sampled with sentiment tracking the
        overall ``rating``.
        """
        sentences: List[str] = []
        if aspect_mentions:
            for aspect_idx, positive in aspect_mentions:
                aspect = self.domain.aspects[aspect_idx % self.domain.num_aspects]
                bank = _POSITIVE_OPINIONS if positive else _NEGATIVE_OPINIONS
                sentences.append(str(self._rng.choice(bank)).format(aspect=aspect))
        else:
            positive_share = (rating - 1.0) / 4.0
            for _ in range(int(self._rng.integers(2, 5))):
                aspect = str(self._rng.choice(self.domain.aspects))
                bank = (
                    _POSITIVE_OPINIONS
                    if self._rng.random() < positive_share
                    else _NEGATIVE_OPINIONS
                )
                sentences.append(str(self._rng.choice(bank)).format(aspect=aspect))
        if self._rng.random() < 0.7:
            sentences.insert(
                int(self._rng.integers(0, len(sentences) + 1)),
                str(self._rng.choice(_NEUTRAL_FILLERS)),
            )
        # Enthusiastic (or furious) honest reviewers sometimes sound
        # exactly like spam — hyperbole is not proof of fraud.
        if self._rng.random() < self.confusion * 0.6:
            bank = _FAKE_PROMOTE if rating >= 3.0 else _FAKE_DEMOTE
            sentences.append(str(self._rng.choice(bank)))
        return ". ".join(sentences) + "."

    def fake_review(self, promote: bool) -> str:
        """Write a fake review (promoting or demoting)."""
        # Competent spammers imitate honest style entirely.
        if self._rng.random() < self.confusion:
            return self.benign_review(5.0 if promote else 1.0)
        bank = _FAKE_PROMOTE if promote else _FAKE_DEMOTE
        picks = [str(self._rng.choice(bank)) for _ in range(int(self._rng.integers(1, 3)))]
        # Fakes occasionally mention one aspect for camouflage.
        if self._rng.random() < 0.3:
            aspect = str(self._rng.choice(self.domain.aspects))
            filler = _POSITIVE_OPINIONS if promote else _NEGATIVE_OPINIONS
            picks.append(str(self._rng.choice(filler)).format(aspect=aspect))
        return ". ".join(picks) + "."

    def item_name(self, index: int) -> str:
        """A human-readable item label, unique per index."""
        noun = self.domain.item_nouns[index % len(self.domain.item_nouns)]
        return f"{noun.title()} #{index}"


def domain_for(name: str) -> Domain:
    """Look up a domain by name (``restaurants`` or ``music``)."""
    domains = {"restaurants": RESTAURANTS, "music": MUSIC}
    if name not in domains:
        raise KeyError(f"unknown domain {name!r}; options: {sorted(domains)}")
    return domains[name]
