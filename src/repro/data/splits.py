"""Train/test splitting following the paper's protocol (Sec IV-C).

"For each data set, 70% of instances are used to train the model and 30%
for testing."  The default split is uniformly random, so cold-start
users/items can appear in the test set — the regime in which the paper
observes DER and REV2 struggling.  ``pin_entities=True`` instead
guarantees one training review per user and item (a common alternative
protocol, kept for comparison).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .review import ReviewDataset, ReviewSubset


def train_test_split(
    dataset: ReviewDataset,
    train_fraction: float = 0.7,
    seed: int = 0,
    pin_entities: bool = False,
) -> Tuple[ReviewSubset, ReviewSubset]:
    """Split into train/test subsets.

    With ``pin_entities`` every user and item keeps at least one review
    in the training set; otherwise the split is uniformly random.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    n = len(dataset)

    pinned = np.zeros(n, dtype=bool)
    if pin_entities:
        # Pin one (random) review per user and per item into train.
        for group in (dataset.reviews_by_user, dataset.reviews_by_item):
            for indices in group:
                if indices:
                    pinned[indices[int(rng.integers(len(indices)))]] = True

    target_train = int(round(train_fraction * n))
    target_train = max(target_train, int(pinned.sum()))

    free = np.flatnonzero(~pinned)
    rng.shuffle(free)
    n_extra = target_train - int(pinned.sum())
    train_mask = pinned.copy()
    train_mask[free[:n_extra]] = True

    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(~train_mask)
    if len(test_idx) == 0:
        raise ValueError(
            "split produced an empty test set; the dataset is too small for "
            f"train_fraction={train_fraction}"
        )
    return (
        dataset.subset(train_idx.tolist(), name="train"),
        dataset.subset(test_idx.tolist(), name="test"),
    )
