"""``repro.data`` — review data model, platform simulator, and loaders."""

from .analysis import (
    AttackSummary,
    attacked_items,
    degree_quantiles,
    describe,
    fake_rating_gap,
    rating_histogram,
)
from .batching import Batch, iter_batches
from .catalogs import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    load_all,
    load_dataset,
    preset_config,
)
from .corpora import MUSIC, RESTAURANTS, Domain, ReviewWriter, domain_for
from .io import load_dataset_jsonl, save_dataset_jsonl
from .loaders import load_amazon_json, load_yelp_metadata
from .review import BENIGN, FAKE, Review, ReviewDataset, ReviewSubset
from .sampling import InputSlots, ReviewTextTable
from .splits import train_test_split
from .synthetic import PlatformConfig, PlatformTruth, generate_platform

__all__ = [
    "AttackSummary",
    "BENIGN",
    "Batch",
    "DATASET_NAMES",
    "Domain",
    "FAKE",
    "InputSlots",
    "MUSIC",
    "PAPER_STATISTICS",
    "PlatformConfig",
    "PlatformTruth",
    "RESTAURANTS",
    "Review",
    "ReviewDataset",
    "ReviewSubset",
    "ReviewTextTable",
    "ReviewWriter",
    "attacked_items",
    "degree_quantiles",
    "describe",
    "domain_for",
    "fake_rating_gap",
    "generate_platform",
    "iter_batches",
    "load_all",
    "load_amazon_json",
    "load_dataset",
    "load_dataset_jsonl",
    "load_yelp_metadata",
    "preset_config",
    "rating_histogram",
    "save_dataset_jsonl",
    "train_test_split",
]
