"""Generative simulator of a review platform with opinion-spam campaigns.

This is the stand-in for the YelpChi/YelpNYC/YelpZip and Amazon
Musics/CDs corpora (see DESIGN.md for the substitution argument).  The
generative story follows the recommendation and fraud-detection
literature the paper builds on (NARRE, FraudEagle, SpEagle, REV2):

* every item has a base quality plus an *aspect quality* vector; every
  benign user has a personal bias plus sparse aspect preferences.  A
  benign rating is ``quality + bias + preference·aspect_quality + noise``
  and the review text discusses the aspects the user cares about with
  polarity matching the item — so text genuinely carries rating signal
  that ID-only models (PMF) cannot recover for sparse users;
* fraud campaigns pick targets and *unjustly promote bad items or demote
  good items* (the paper's own wording) with extreme ratings, bursty
  timestamps, and generic template-heavy text.  Account behaviour is
  controlled by ``fraud_reuse``: near 1, every fake comes from a fresh
  throwaway account (Yelp-style singleton spam, which starves
  user-degree features and graph methods); larger values re-use
  accounts (Amazon-style, where REV2/ICWSM13 do much better) — exactly
  the cross-dataset contrast Table IV shows;
* user activity and item popularity follow heavy-tailed (Zipf-like)
  distributions so degree statistics resemble the real corpora.

Everything is driven by one seeded ``numpy.random.Generator``.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.obs.trace import traced

from .corpora import ReviewWriter, domain_for
from .review import BENIGN, FAKE, Review, ReviewDataset


@dataclass
class PlatformConfig:
    """Knobs of the simulated platform.

    Attributes
    ----------
    name:
        Dataset tag (``yelpchi``...).
    domain:
        Language domain, ``"restaurants"`` or ``"music"``.
    num_items / num_benign_users:
        Population sizes before trimming zero-degree entities.
    num_reviews:
        Target total review count (approximate after trimming).
    fake_fraction:
        Target share of fake reviews (Table II column).
    item_popularity_alpha:
        Zipf exponent for item popularity; larger → reviews concentrate
        on few items (Yelp-like).  Near zero → uniform (Amazon-like).
    user_activity_alpha:
        Zipf exponent for benign user activity.
    campaign_size_mean:
        Mean number of fake reviews per fraud campaign.
    fraud_reuse:
        Mean fakes written per fraud account.  ≈1 → singleton throwaway
        accounts; ≥3 → repeat offenders.
    fraud_popularity_boost:
        Exponent applied to item popularity when picking fraud targets.
        1.0 → fakes follow organic popularity (Yelp campaigns);
        >1 → fakes concentrate on popular items (Amazon-style careless
        reviews on best-sellers, where a rating consensus exists).
    strategic_polarity:
        True → campaigns promote bad items / demote good ones (paper
        Sec I).  False → the uplift sign is random per review (careless
        rather than adversarial — the Amazon helpfulness ground truth).
    fake_uplift:
        Mean absolute rating shift of a fake relative to item quality.
    camouflage_rate:
        Probability a fraud account also writes one honest
        (benign-labelled) review, mimicking camouflage behaviour.
    horizon_days:
        Simulated platform lifetime.
    burst_days:
        Length of the time window a campaign's reviews land in.
    rating_noise:
        Std-dev of benign rating noise.
    aspect_strength:
        Scale of the user-preference × item-aspect interaction term.
    text_confusion:
        How often fakes imitate honest phrasing (and honest reviewers
        sound spammy); 0 makes the populations textually separable.
    seed:
        Master seed.
    """

    name: str = "synthetic"
    domain: str = "restaurants"
    num_items: int = 40
    num_benign_users: int = 800
    num_reviews: int = 2400
    fake_fraction: float = 0.13
    item_popularity_alpha: float = 1.0
    user_activity_alpha: float = 1.2
    campaign_size_mean: float = 12.0
    fraud_reuse: float = 1.3
    fraud_popularity_boost: float = 1.0
    strategic_polarity: bool = True
    fake_uplift: float = 1.4
    camouflage_rate: float = 0.3
    horizon_days: float = 730.0
    burst_days: float = 45.0
    rating_noise: float = 0.6
    aspect_strength: float = 0.9
    text_confusion: float = 0.45
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fake_fraction < 1.0:
            raise ValueError(f"fake_fraction must be in [0, 1), got {self.fake_fraction}")
        if self.num_reviews < 10:
            raise ValueError("num_reviews too small to form a dataset")
        if min(self.num_items, self.num_benign_users) < 1:
            raise ValueError("need at least one item and one benign user")
        if self.fraud_reuse < 1.0:
            raise ValueError(f"fraud_reuse must be >= 1, got {self.fraud_reuse}")


@dataclass
class PlatformTruth:
    """Latent ground truth of a generated platform (for tests/analysis)."""

    item_quality: np.ndarray
    item_aspects: np.ndarray
    user_bias: np.ndarray
    fraud_user_flags: np.ndarray
    campaign_targets: List[int] = field(default_factory=list)


@traced("data.generate_platform", kind="data")
def generate_platform(config: PlatformConfig, return_truth: bool = False):
    """Simulate a review platform.

    Returns the :class:`ReviewDataset` (and, optionally, the
    :class:`PlatformTruth` latents).  Users/items with zero reviews are
    trimmed and ids compacted, so every entity has at least one review —
    the invariant the paper's split protocol expects.
    """
    rng = np.random.default_rng(config.seed)
    domain = domain_for(config.domain)
    writer = ReviewWriter(domain, rng, confusion=config.text_confusion)
    n_aspects = domain.num_aspects

    n_fake_target = int(round(config.num_reviews * config.fake_fraction))
    n_benign_target = config.num_reviews - n_fake_target

    # Latents -------------------------------------------------------------
    item_quality = rng.uniform(1.8, 4.6, size=config.num_items)
    item_aspects = rng.normal(0.0, 1.0, size=(config.num_items, n_aspects))
    user_bias = rng.normal(0.0, 0.8, size=config.num_benign_users)
    # Sparse aspect preferences: each user cares about 2-4 aspects.
    user_pref = np.zeros((config.num_benign_users, n_aspects))
    for u in range(config.num_benign_users):
        cared = rng.choice(n_aspects, size=int(rng.integers(2, 5)), replace=False)
        user_pref[u, cared] = rng.normal(0.0, 1.0, size=len(cared))

    item_popularity = _zipf_weights(config.num_items, config.item_popularity_alpha, rng)
    user_activity = _zipf_weights(config.num_benign_users, config.user_activity_alpha, rng)

    reviews: List[Review] = []

    # Benign reviews --------------------------------------------------------
    users = rng.choice(config.num_benign_users, size=n_benign_target, p=user_activity)
    items = rng.choice(config.num_items, size=n_benign_target, p=item_popularity)
    times = rng.uniform(0.0, config.horizon_days, size=n_benign_target)
    noise = rng.normal(0.0, config.rating_noise, size=n_benign_target)
    for u, i, t, eps in zip(users, items, times, noise):
        interaction = config.aspect_strength * float(
            user_pref[u] @ item_aspects[i]
        ) / np.sqrt(n_aspects)
        rating = float(
            np.clip(np.round(item_quality[i] + user_bias[u] + interaction + eps), 1, 5)
        )
        mentions = _aspect_mentions(user_pref[u], item_aspects[i], item_quality[i], rng)
        reviews.append(
            Review(
                user_id=int(u),
                item_id=int(i),
                rating=rating,
                label=BENIGN,
                text=writer.benign_review(rating, mentions),
                timestamp=float(t),
            )
        )

    # Fraud campaigns ---------------------------------------------------------
    fraud_targeting = item_popularity**config.fraud_popularity_boost
    fraud_targeting /= fraud_targeting.sum()
    campaign_targets: List[int] = []
    fraud_offset = config.num_benign_users  # fraud accounts get the next ids
    fraud_accounts: List[int] = []  # account ids (offset-based) in use
    next_fraud = 0
    p_new_account = 1.0 / config.fraud_reuse
    fakes_written = 0
    while fakes_written < n_fake_target:
        size = max(1, int(rng.poisson(config.campaign_size_mean)))
        size = min(size, n_fake_target - fakes_written)
        target_item = int(rng.choice(config.num_items, p=fraud_targeting))
        campaign_targets.append(target_item)
        if config.strategic_polarity:
            # Promote bad items, demote good ones (paper Sec I).
            promote = bool(item_quality[target_item] < 3.2)
        else:
            promote = bool(rng.random() < 0.5)
        start = rng.uniform(0.0, config.horizon_days - config.burst_days)
        for _ in range(size):
            if not fraud_accounts or rng.random() < p_new_account:
                account = next_fraud
                next_fraud += 1
                fraud_accounts.append(account)
            else:
                account = int(rng.choice(fraud_accounts))
            # The fake rating is the item's true quality pushed by an
            # uplift, not always a flat 5/1 — subtler campaigns survive
            # deviation-based filters longer.
            uplift = rng.normal(config.fake_uplift, 0.4)
            shifted = item_quality[target_item] + (uplift if promote else -uplift)
            rating = float(np.clip(np.round(shifted), 1, 5))
            reviews.append(
                Review(
                    user_id=fraud_offset + account,
                    item_id=target_item,
                    rating=rating,
                    label=FAKE,
                    text=writer.fake_review(promote),
                    timestamp=float(start + rng.uniform(0.0, config.burst_days)),
                )
            )
            fakes_written += 1

    # Camouflage: some fraud accounts write one honest review too.
    for account in sorted(set(fraud_accounts)):
        if rng.random() < config.camouflage_rate:
            i = int(rng.choice(config.num_items, p=item_popularity))
            rating = float(np.clip(np.round(item_quality[i] + rng.normal(0, 0.5)), 1, 5))
            reviews.append(
                Review(
                    user_id=fraud_offset + account,
                    item_id=i,
                    rating=rating,
                    label=BENIGN,
                    text=writer.benign_review(rating),
                    timestamp=float(rng.uniform(0.0, config.horizon_days)),
                )
            )

    # Compact ids (drop zero-degree users/items) ------------------------------
    dataset, fraud_flags, kept_items = _compact(reviews, config, writer, fraud_offset, rng)
    if return_truth:
        truth = PlatformTruth(
            item_quality=item_quality[kept_items],
            item_aspects=item_aspects[kept_items],
            user_bias=user_bias,
            fraud_user_flags=fraud_flags,
            campaign_targets=campaign_targets,
        )
        return dataset, truth
    return dataset


def _aspect_mentions(
    preferences: np.ndarray,
    aspects: np.ndarray,
    base_quality: float,
    rng: np.random.Generator,
) -> List[tuple]:
    """Pick (aspect, polarity) pairs a benign review discusses.

    Users mostly mention the aspects they care about; polarity follows
    the item's aspect quality shifted by its base quality.
    """
    n_aspects = len(aspects)
    cared = np.flatnonzero(preferences)
    n_mentions = int(rng.integers(2, 5))
    mentions = []
    for _ in range(n_mentions):
        if len(cared) and rng.random() < 0.7:
            aspect = int(rng.choice(cared))
        else:
            aspect = int(rng.integers(n_aspects))
        signal = aspects[aspect] + (base_quality - 3.2) + rng.normal(0, 0.6)
        mentions.append((aspect, bool(signal > 0)))
    return mentions


def _compact(reviews, config, writer, fraud_offset, rng):
    """Renumber users/items to contiguous ids; build readable names."""
    used_users = sorted({r.user_id for r in reviews})
    used_items = sorted({r.item_id for r in reviews})
    user_map = {old: new for new, old in enumerate(used_users)}
    item_map = {old: new for new, old in enumerate(used_items)}

    remapped = [
        Review(
            user_id=user_map[r.user_id],
            item_id=item_map[r.item_id],
            rating=r.rating,
            label=r.label,
            text=r.text,
            timestamp=r.timestamp,
        )
        for r in reviews
    ]
    user_names = [_yelp_style_id(rng) for _ in used_users]
    item_names = [writer.item_name(old) for old in used_items]
    dataset = ReviewDataset(
        remapped, name=config.name, user_names=user_names, item_names=item_names
    )
    fraud_flags = np.array([old >= fraud_offset for old in used_users], dtype=bool)
    kept_items = np.array(used_items, dtype=np.int64)
    return dataset, fraud_flags, kept_items


def _zipf_weights(n: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity weights with a random rank permutation."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    rng.shuffle(weights)
    return weights / weights.sum()


def _yelp_style_id(rng: np.random.Generator, length: int = 11) -> str:
    """Random alphanumeric handle like the Yelp user ids in Table VII."""
    alphabet = np.array(list(string.ascii_letters + string.digits))
    return "".join(rng.choice(alphabet, size=length))
