"""Mini-batch iteration over review subsets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.obs import metrics as obs_metrics

from .review import ReviewSubset


@dataclass(frozen=True)
class Batch:
    """One mini-batch of review examples (column arrays)."""

    review_indices: np.ndarray  # indices into the parent dataset
    user_ids: np.ndarray
    item_ids: np.ndarray
    ratings: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.review_indices)


def iter_batches(
    subset: ReviewSubset,
    batch_size: int,
    shuffle: bool = True,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """Yield :class:`Batch` objects over ``subset``.

    ``drop_last`` discards a trailing partial batch (useful when a model
    caches per-batch buffers).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = subset.index_array.copy()
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        rng.shuffle(order)
    parent = subset.parent
    # Metrics are recorded only into an active registry (None check when
    # observability is off), so the plain path stays untouched.
    registry = obs_metrics.active()
    batch_counter = example_counter = None
    if registry is not None:
        batch_counter = registry.counter(
            "repro_batches_total", "Mini-batches yielded by iter_batches"
        ).labels()
        example_counter = registry.counter(
            "repro_examples_total", "Examples yielded by iter_batches"
        ).labels()
    for start in range(0, len(order), batch_size):
        chunk = order[start : start + batch_size]
        if drop_last and len(chunk) < batch_size:
            return
        if batch_counter is not None:
            batch_counter.inc()
            example_counter.inc(len(chunk))
        yield Batch(
            review_indices=chunk,
            user_ids=parent.user_ids[chunk],
            item_ids=parent.item_ids[chunk],
            ratings=parent.ratings[chunk],
            labels=parent.labels[chunk],
        )
