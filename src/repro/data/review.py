"""The review data model: the tuple t^ui and the dataset container.

A :class:`Review` is the paper's tuple ``t^ui = {u, i, r_ui, l_ui, w_ui}``
plus a timestamp (needed by the time-based sampling strategy of Sec III-D
and by the behaviour-based baselines).

:class:`ReviewDataset` owns a list of reviews with contiguous integer
user/item ids, per-user and per-item indexes, and the tokenised text.
Every model in the repository consumes this one container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..text import Vocabulary, tokenize

BENIGN = 1
FAKE = 0


@dataclass(frozen=True)
class Review:
    """One review tuple t^ui.

    Attributes
    ----------
    user_id / item_id:
        Contiguous integer ids (0-based) within the owning dataset.
    rating:
        The star rating r_ui, typically 1-5.
    label:
        Ground-truth reliability l_ui — ``BENIGN`` (1) or ``FAKE`` (0).
    text:
        Raw textual content w_ui.
    timestamp:
        Publication time (arbitrary increasing float; days work well).
    """

    user_id: int
    item_id: int
    rating: float
    label: int
    text: str
    timestamp: float

    def __post_init__(self) -> None:
        if self.label not in (BENIGN, FAKE):
            raise ValueError(f"label must be {BENIGN} or {FAKE}, got {self.label}")

    @property
    def is_benign(self) -> bool:
        return self.label == BENIGN


class ReviewDataset:
    """A corpus of reviews with user/item indexes and tokenized text.

    Parameters
    ----------
    reviews:
        The review tuples; user/item ids must be contiguous from 0.
    name:
        Dataset tag used in reports (e.g. ``"yelpchi"``).
    user_names / item_names:
        Optional human-readable labels aligned to the ids (used by the
        case-study tables).
    """

    def __init__(
        self,
        reviews: Sequence[Review],
        name: str = "dataset",
        user_names: Optional[Sequence[str]] = None,
        item_names: Optional[Sequence[str]] = None,
    ) -> None:
        if not reviews:
            raise ValueError("a dataset needs at least one review")
        self.reviews: List[Review] = list(reviews)
        self.name = name

        self.num_users = 1 + max(r.user_id for r in self.reviews)
        self.num_items = 1 + max(r.item_id for r in self.reviews)
        for r in self.reviews:
            if r.user_id < 0 or r.item_id < 0:
                raise ValueError("user/item ids must be non-negative")

        self.user_names = list(user_names) if user_names else [
            f"user_{u}" for u in range(self.num_users)
        ]
        self.item_names = list(item_names) if item_names else [
            f"item_{i}" for i in range(self.num_items)
        ]
        if len(self.user_names) != self.num_users:
            raise ValueError("user_names length does not match the id space")
        if len(self.item_names) != self.num_items:
            raise ValueError("item_names length does not match the id space")

        # Column views (used everywhere; built once).
        self.user_ids = np.array([r.user_id for r in self.reviews], dtype=np.int64)
        self.item_ids = np.array([r.item_id for r in self.reviews], dtype=np.int64)
        self.ratings = np.array([r.rating for r in self.reviews], dtype=np.float64)
        self.labels = np.array([r.label for r in self.reviews], dtype=np.int64)
        self.timestamps = np.array([r.timestamp for r in self.reviews], dtype=np.float64)

        # W^u and W^i: review indices per user / per item, time-sorted.
        self.reviews_by_user: List[List[int]] = [[] for _ in range(self.num_users)]
        self.reviews_by_item: List[List[int]] = [[] for _ in range(self.num_items)]
        for idx in np.argsort(self.timestamps, kind="stable"):
            r = self.reviews[int(idx)]
            self.reviews_by_user[r.user_id].append(int(idx))
            self.reviews_by_item[r.item_id].append(int(idx))

        self._tokens: Optional[List[List[str]]] = None
        self._vocab: Optional[Vocabulary] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.reviews)

    def __getitem__(self, idx: int) -> Review:
        return self.reviews[idx]

    def __iter__(self):
        return iter(self.reviews)

    # ------------------------------------------------------------------
    # Text access (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def tokens(self) -> List[List[str]]:
        """Tokenized text of every review (cached)."""
        if self._tokens is None:
            self._tokens = [tokenize(r.text) for r in self.reviews]
        return self._tokens

    def build_vocabulary(self, min_count: int = 1, max_size: Optional[int] = None) -> Vocabulary:
        """Build (and cache) the vocabulary over all review text."""
        if self._vocab is None or min_count != 1 or max_size is not None:
            self._vocab = Vocabulary(self.tokens, min_count=min_count, max_size=max_size)
        return self._vocab

    # ------------------------------------------------------------------
    # Statistics (Table II)
    # ------------------------------------------------------------------
    def fake_fraction(self) -> float:
        """Fraction of reviews labelled fake."""
        return float((self.labels == FAKE).mean())

    def user_degrees(self) -> np.ndarray:
        """|W^u| for every user."""
        return np.bincount(self.user_ids, minlength=self.num_users)

    def item_degrees(self) -> np.ndarray:
        """|W^i| for every item."""
        return np.bincount(self.item_ids, minlength=self.num_items)

    def statistics(self) -> Dict[str, float]:
        """Summary row matching Table II plus degree medians."""
        return {
            "reviews": len(self.reviews),
            "fake_fraction": self.fake_fraction(),
            "items": self.num_items,
            "users": self.num_users,
            "median_user_degree": float(np.median(self.user_degrees())),
            "median_item_degree": float(np.median(self.item_degrees())),
        }

    # ------------------------------------------------------------------
    def subset(self, indices: Iterable[int], name: Optional[str] = None) -> "ReviewSubset":
        """A light view over a subset of review indices (keeps id space)."""
        return ReviewSubset(self, list(indices), name=name)


@dataclass
class ReviewSubset:
    """Index view into a parent dataset (train/test splits).

    Keeps the parent's user/item id space so model embedding tables stay
    valid across splits.
    """

    parent: ReviewDataset
    indices: List[int]
    name: Optional[str] = None
    _array: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._array = np.asarray(self.indices, dtype=np.int64)
        if len(self._array) and (
            self._array.min() < 0 or self._array.max() >= len(self.parent)
        ):
            raise IndexError("subset index out of the parent's range")

    def __len__(self) -> int:
        return len(self._array)

    def __iter__(self):
        for idx in self._array:
            yield self.parent.reviews[int(idx)]

    @property
    def index_array(self) -> np.ndarray:
        return self._array

    @property
    def user_ids(self) -> np.ndarray:
        return self.parent.user_ids[self._array]

    @property
    def item_ids(self) -> np.ndarray:
        return self.parent.item_ids[self._array]

    @property
    def ratings(self) -> np.ndarray:
        return self.parent.ratings[self._array]

    @property
    def labels(self) -> np.ndarray:
        return self.parent.labels[self._array]

    @property
    def timestamps(self) -> np.ndarray:
        return self.parent.timestamps[self._array]
