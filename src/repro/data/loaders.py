"""Loaders for the real dataset formats the paper uses.

The corpora themselves cannot ship with this repository, but users who
obtain them can drop them in:

* **Rayana & Akoglu Yelp releases** (YelpChi/YelpNYC/YelpZip): a
  ``metadata`` file with lines ``user_id item_id rating label date`` and a
  parallel ``reviewContent`` file with lines
  ``user_id item_id date text``.  Label is ``-1`` (filtered → fake) or
  ``1`` (recommended → benign).
* **Amazon JSON-lines** (McAuley releases): one JSON object per line with
  ``reviewerID``, ``asin``, ``overall``, ``helpful: [up, total]``,
  ``unixReviewTime``, ``reviewText``.  Following the paper, only users
  with ≥ ``min_votes`` total helpfulness votes are kept; a review is
  benign when helpful/total ≥ 0.7 and fake when ≤ 0.3 (others dropped).
"""

from __future__ import annotations

import json
from collections import defaultdict
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .review import BENIGN, FAKE, Review, ReviewDataset

PathLike = Union[str, Path]


def load_yelp_metadata(
    metadata_path: PathLike,
    review_content_path: Optional[PathLike] = None,
    name: str = "yelp",
) -> ReviewDataset:
    """Parse a Rayana-Akoglu style Yelp release into a :class:`ReviewDataset`."""
    metadata_path = Path(metadata_path)
    texts: Dict[Tuple[str, str, str], str] = {}
    if review_content_path is not None:
        with open(review_content_path, encoding="utf-8", errors="replace") as f:
            for line in f:
                parts = line.rstrip("\n").split(None, 3)
                if len(parts) == 4:
                    user, item, date, text = parts
                    texts[(user, item, date)] = text

    raw: List[Tuple[str, str, float, int, str]] = []
    with open(metadata_path, encoding="utf-8", errors="replace") as f:
        for line_no, line in enumerate(f, 1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 5:
                raise ValueError(
                    f"{metadata_path}:{line_no}: expected 5 fields, got {len(parts)}"
                )
            user, item, rating, label, date = parts[:5]
            label_int = BENIGN if label == "1" else FAKE
            raw.append((user, item, float(rating), label_int, date))

    user_index = _index_of([r[0] for r in raw])
    item_index = _index_of([r[1] for r in raw])
    reviews = [
        Review(
            user_id=user_index[user],
            item_id=item_index[item],
            rating=rating,
            label=label,
            text=texts.get((user, item, date), ""),
            timestamp=_date_to_days(date),
        )
        for user, item, rating, label, date in raw
    ]
    return ReviewDataset(
        reviews,
        name=name,
        user_names=_names_of(user_index),
        item_names=_names_of(item_index),
    )


def load_amazon_json(
    path: PathLike,
    name: str = "amazon",
    min_votes: int = 20,
    benign_threshold: float = 0.7,
    fake_threshold: float = 0.3,
) -> ReviewDataset:
    """Parse an Amazon JSON-lines dump, labelling by helpfulness votes."""
    if benign_threshold <= fake_threshold:
        raise ValueError("benign_threshold must exceed fake_threshold")
    entries = []
    votes_per_user: Dict[str, int] = defaultdict(int)
    with open(path, encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            up, total = (obj.get("helpful") or [0, 0])[:2]
            votes_per_user[obj["reviewerID"]] += int(total)
            entries.append(obj)

    kept = []
    for obj in entries:
        user = obj["reviewerID"]
        if votes_per_user[user] < min_votes:
            continue
        up, total = (obj.get("helpful") or [0, 0])[:2]
        if total == 0:
            continue
        ratio = up / total
        if ratio >= benign_threshold:
            label = BENIGN
        elif ratio <= fake_threshold:
            label = FAKE
        else:
            continue
        kept.append(
            (
                user,
                obj["asin"],
                float(obj.get("overall", 3.0)),
                label,
                str(obj.get("reviewText", "")),
                float(obj.get("unixReviewTime", 0)) / 86400.0,
            )
        )
    if not kept:
        raise ValueError(f"no labelled reviews survived the vote filters in {path}")

    user_index = _index_of([k[0] for k in kept])
    item_index = _index_of([k[1] for k in kept])
    reviews = [
        Review(
            user_id=user_index[user],
            item_id=item_index[item],
            rating=rating,
            label=label,
            text=text,
            timestamp=ts,
        )
        for user, item, rating, label, text, ts in kept
    ]
    return ReviewDataset(
        reviews,
        name=name,
        user_names=_names_of(user_index),
        item_names=_names_of(item_index),
    )


def _index_of(keys: List[str]) -> Dict[str, int]:
    """Stable first-appearance index of string keys."""
    index: Dict[str, int] = {}
    for key in keys:
        if key not in index:
            index[key] = len(index)
    return index


def _names_of(index: Dict[str, int]) -> List[str]:
    names = [""] * len(index)
    for key, idx in index.items():
        names[idx] = key
    return names


def _date_to_days(date: str) -> float:
    """Parse ``YYYY-MM-DD``-ish dates to days since epoch; 0.0 on failure."""
    for fmt in ("%Y-%m-%d", "%m/%d/%Y"):
        try:
            return datetime.strptime(date, fmt).timestamp() / 86400.0
        except ValueError:
            continue
    return 0.0
