"""Dataset analysis: distribution summaries and attack forensics.

Text-mode analytics over a :class:`~repro.data.ReviewDataset` — the
checks one runs before trusting any benchmark number: degree and rating
distributions, fake-share concentration, and per-item attack summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .review import FAKE, ReviewDataset


def rating_histogram(dataset: ReviewDataset) -> Dict[float, int]:
    """Count of reviews per rating value, split not applied."""
    values, counts = np.unique(dataset.ratings, return_counts=True)
    return {float(v): int(c) for v, c in zip(values, counts)}


def degree_quantiles(
    degrees: np.ndarray, quantiles=(0.0, 0.25, 0.5, 0.75, 0.95, 1.0)
) -> Dict[str, float]:
    """Named quantiles of a degree array."""
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        raise ValueError("empty degree array")
    return {f"q{int(100 * q)}": float(np.quantile(degrees, q)) for q in quantiles}


@dataclass(frozen=True)
class AttackSummary:
    """Fraud exposure of one item."""

    item_id: int
    item_name: str
    total_reviews: int
    fake_reviews: int
    fake_share: float
    rating_shift: float  # mean(all ratings) − mean(benign ratings)


def attacked_items(dataset: ReviewDataset, min_fakes: int = 1) -> List[AttackSummary]:
    """Per-item attack summaries, most-attacked first.

    ``rating_shift`` measures how far the fakes drag the item's visible
    mean rating — the quantity a rating model inherits if it trusts
    everything.
    """
    summaries: List[AttackSummary] = []
    for item in range(dataset.num_items):
        indices = np.asarray(dataset.reviews_by_item[item])
        if len(indices) == 0:
            continue
        labels = dataset.labels[indices]
        fakes = int((labels == FAKE).sum())
        if fakes < min_fakes:
            continue
        ratings = dataset.ratings[indices]
        benign_ratings = ratings[labels != FAKE]
        shift = (
            float(ratings.mean() - benign_ratings.mean())
            if len(benign_ratings)
            else float("nan")
        )
        summaries.append(
            AttackSummary(
                item_id=item,
                item_name=dataset.item_names[item],
                total_reviews=int(len(indices)),
                fake_reviews=fakes,
                fake_share=fakes / len(indices),
                rating_shift=shift,
            )
        )
    summaries.sort(key=lambda s: -s.fake_reviews)
    return summaries


def fake_rating_gap(dataset: ReviewDataset) -> float:
    """mean(fake ratings) − mean(benign ratings): the net attack polarity.

    Positive → promotion-dominated spam; negative → demotion-dominated.
    """
    fake_mask = dataset.labels == FAKE
    if not fake_mask.any() or fake_mask.all():
        raise ValueError("need both fake and benign reviews")
    return float(dataset.ratings[fake_mask].mean() - dataset.ratings[~fake_mask].mean())


def describe(dataset: ReviewDataset, top_attacked: int = 3) -> str:
    """Multi-line text report of a dataset's shape and attack surface."""
    stats = dataset.statistics()
    lines = [
        f"dataset {dataset.name!r}: {stats['reviews']:.0f} reviews, "
        f"{stats['users']:.0f} users, {stats['items']:.0f} items, "
        f"{100 * stats['fake_fraction']:.1f}% fake",
        f"  user degree: {degree_quantiles(dataset.user_degrees())}",
        f"  item degree: {degree_quantiles(dataset.item_degrees())}",
        f"  ratings: {rating_histogram(dataset)}",
    ]
    try:
        lines.append(f"  fake-vs-benign rating gap: {fake_rating_gap(dataset):+.2f}")
    except ValueError:
        lines.append("  fake-vs-benign rating gap: n/a (single-class data)")
    attacks = attacked_items(dataset)
    lines.append(f"  attacked items: {len(attacks)}")
    for summary in attacks[:top_attacked]:
        lines.append(
            f"    {summary.item_name}: {summary.fake_reviews}/{summary.total_reviews} "
            f"fake, visible-mean shift {summary.rating_shift:+.2f}"
        )
    return "\n".join(lines)
