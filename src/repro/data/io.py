"""Dataset persistence: JSON-lines export/import.

A generated platform can be frozen to disk and reloaded byte-identically
— useful for sharing exact experimental inputs and for diffing simulator
versions.  One JSON object per review plus a leading header object.

Loading degrades gracefully: :func:`load_dataset_jsonl` can skip
malformed or truncated lines up to a caller-set tolerance, quarantining
the offenders to a sidecar file and reporting the count through the
active :class:`repro.obs.MetricsRegistry` — so one bad record in a
multi-gigabyte export no longer destroys the run that reads it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics

from .review import Review, ReviewDataset

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_dataset_jsonl(dataset: ReviewDataset, path: PathLike) -> None:
    """Write a dataset as JSON-lines (header line + one line per review)."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "user_names": dataset.user_names,
        "item_names": dataset.item_names,
    }
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header) + "\n")
        for review in dataset.reviews:
            f.write(
                json.dumps(
                    {
                        "u": review.user_id,
                        "i": review.item_id,
                        "r": review.rating,
                        "l": review.label,
                        "t": review.timestamp,
                        "w": review.text,
                    }
                )
                + "\n"
            )


def _parse_review(obj: dict) -> Review:
    """Build one :class:`Review`; raises ``ValueError`` on bad fields."""
    try:
        review = Review(
            user_id=int(obj["u"]),
            item_id=int(obj["i"]),
            rating=float(obj["r"]),
            label=int(obj["l"]),
            text=str(obj["w"]),
            timestamp=float(obj["t"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed review record: {exc}") from exc
    if not math.isfinite(review.rating):
        raise ValueError(f"non-finite rating {review.rating!r}")
    return review


def _write_quarantine(
    path: Path, bad: List[Tuple[int, str, str]]
) -> None:
    """Persist skipped lines as JSONL (line number, error, raw text)."""
    with open(path, "w", encoding="utf-8") as fh:
        for line_no, error, raw in bad:
            fh.write(json.dumps({"line": line_no, "error": error, "raw": raw}) + "\n")


def load_dataset_jsonl(
    path: PathLike,
    max_bad_lines: int = 0,
    quarantine: Optional[PathLike] = None,
) -> ReviewDataset:
    """Read a dataset written by :func:`save_dataset_jsonl`.

    ``max_bad_lines`` sets the tolerance for malformed or truncated
    review lines (invalid JSON, missing/ill-typed fields, non-finite
    ratings).  The default ``0`` keeps the strict behaviour — the first
    bad line raises ``ValueError``.  With a positive tolerance, bad
    lines are skipped, written to a quarantine sidecar
    (``quarantine``, default ``<path>.quarantine``) as
    ``{"line", "error", "raw"}`` JSONL records, and counted on the
    active metrics registry (``repro_quarantined_lines_total``);
    exceeding the tolerance still raises.  A bad *header* is always
    fatal — without it the body cannot be interpreted.
    """
    if max_bad_lines < 0:
        raise ValueError(f"max_bad_lines must be >= 0, got {max_bad_lines}")
    path = Path(path)
    bad: List[Tuple[int, str, str]] = []
    with open(path, encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line.strip():
            raise ValueError(f"{path}: empty file")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format_version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        reviews = []
        for line_no, line in enumerate(f, 2):
            line = line.strip()
            if not line:
                continue
            try:
                reviews.append(_parse_review(json.loads(line)))
            except ValueError as exc:
                # Covers json.JSONDecodeError (a ValueError subclass)
                # and field-level failures from _parse_review alike.
                bad.append((line_no, str(exc), line))
                if len(bad) > max_bad_lines:
                    raise ValueError(
                        f"{path}:{line_no}: malformed review record ({exc}); "
                        f"{len(bad)} bad line(s) exceeds tolerance "
                        f"max_bad_lines={max_bad_lines}"
                    ) from exc
    if not reviews:
        raise ValueError(f"{path}: no review records after the header")
    if bad:
        quarantine_path = (
            Path(quarantine)
            if quarantine is not None
            else path.with_name(path.name + ".quarantine")
        )
        _write_quarantine(quarantine_path, bad)
        registry = obs_metrics.active()
        if registry is not None:
            registry.counter(
                "repro_quarantined_lines_total",
                "Malformed JSONL lines skipped and quarantined by the loader",
            ).labels().inc(len(bad))
    return ReviewDataset(
        reviews,
        name=header.get("name", "dataset"),
        user_names=header.get("user_names"),
        item_names=header.get("item_names"),
    )
