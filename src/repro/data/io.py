"""Dataset persistence: JSON-lines export/import.

A generated platform can be frozen to disk and reloaded byte-identically
— useful for sharing exact experimental inputs and for diffing simulator
versions.  One JSON object per review plus a leading header object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .review import Review, ReviewDataset

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_dataset_jsonl(dataset: ReviewDataset, path: PathLike) -> None:
    """Write a dataset as JSON-lines (header line + one line per review)."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "user_names": dataset.user_names,
        "item_names": dataset.item_names,
    }
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header) + "\n")
        for review in dataset.reviews:
            f.write(
                json.dumps(
                    {
                        "u": review.user_id,
                        "i": review.item_id,
                        "r": review.rating,
                        "l": review.label,
                        "t": review.timestamp,
                        "w": review.text,
                    }
                )
                + "\n"
            )


def load_dataset_jsonl(path: PathLike) -> ReviewDataset:
    """Read a dataset written by :func:`save_dataset_jsonl`."""
    path = Path(path)
    with open(path, encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line.strip():
            raise ValueError(f"{path}: empty file")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format_version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        reviews = []
        for line_no, line in enumerate(f, 2):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            try:
                reviews.append(
                    Review(
                        user_id=int(obj["u"]),
                        item_id=int(obj["i"]),
                        rating=float(obj["r"]),
                        label=int(obj["l"]),
                        text=str(obj["w"]),
                        timestamp=float(obj["t"]),
                    )
                )
            except (KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{line_no}: malformed review record") from exc
    if not reviews:
        raise ValueError(f"{path}: no review records after the header")
    return ReviewDataset(
        reviews,
        name=header.get("name", "dataset"),
        user_names=header.get("user_names"),
        item_names=header.get("item_names"),
    )
