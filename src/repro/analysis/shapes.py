"""Symbolic shape and dtype inference over :mod:`repro.nn` modules.

Every layer implements the *shape-spec protocol*
(:meth:`repro.nn.Module.shape_spec`): given symbolic input descriptions it
returns symbolic output descriptions, raising :class:`ShapeError` — with
the offending layer and the mismatched axes spelled out — instead of
letting numpy broadcast its way into a wrong-but-running model.  The
symbols (``B``, ``L``, ``m`` …) are carried through unification in a
:class:`ShapeEnv`, so a whole forward dataflow is validated without
executing a single numpy op.

:func:`check_shapes` applies the protocol to the full RRRE model (or an
:class:`repro.core.RRREConfig`), mirroring ``RRRE.forward`` symbolically:
encoder → fraud-attention pooling → reliability head → FM rating head.
Any config — including ones arriving from the CLI — is therefore
validated before training starts (``RRRETrainer.fit(validate=...)`` and
``python -m repro analyze --shapes``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Dim",
    "ShapeSpec",
    "ShapeEnv",
    "ShapeError",
    "ShapeCheckReport",
    "scoped_env",
    "infer_shapes",
    "check_shapes",
    "unify",
    "expect_ndim",
    "expect_axis",
    "expect_dtype",
    "concat_spec",
    "elementwise_spec",
]

DimLike = Union["Dim", int, str]


class ShapeError(ValueError):
    """A symbolic shape/dtype contract violation.

    Attributes
    ----------
    layer:
        Dotted path + class of the offending layer (filled in by
        :func:`apply_spec` as the model walk descends).
    """

    def __init__(self, message: str, layer: str = "") -> None:
        self.layer = layer
        super().__init__(f"{layer}: {message}" if layer else message)

    def with_layer(self, layer: str) -> "ShapeError":
        """Return a copy with ``layer`` prefixed (outermost path wins)."""
        message = self.args[0]
        if self.layer and message.startswith(f"{self.layer}: "):
            message = message[len(self.layer) + 2 :]
            layer = f"{layer} → {self.layer}"
        return ShapeError(message, layer=layer)


class Dim:
    """A symbolic dimension: an optional symbol plus an integer offset.

    ``Dim("B")`` is the symbolic batch axis, ``Dim.of(64)`` a concrete
    width, and ``Dim("L") - 2`` the derived length a kernel-3 valid
    convolution produces.  Two dims unify when their resolved forms agree
    (see :meth:`ShapeEnv.unify`).
    """

    __slots__ = ("sym", "offset")

    def __init__(self, sym: Optional[str] = None, offset: int = 0) -> None:
        self.sym = sym
        self.offset = int(offset)

    @classmethod
    def of(cls, value: DimLike) -> "Dim":
        """Coerce an int (concrete), str (symbol), or Dim to a Dim."""
        if isinstance(value, Dim):
            return value
        if isinstance(value, str):
            return cls(value)
        return cls(None, int(value))

    @property
    def is_concrete(self) -> bool:
        return self.sym is None

    def __add__(self, k: int) -> "Dim":
        return Dim(self.sym, self.offset + int(k))

    def __sub__(self, k: int) -> "Dim":
        return Dim(self.sym, self.offset - int(k))

    def __eq__(self, other) -> bool:
        other = Dim.of(other)
        return self.sym == other.sym and self.offset == other.offset

    def __hash__(self) -> int:
        return hash((self.sym, self.offset))

    def __repr__(self) -> str:
        if self.sym is None:
            return str(self.offset)
        if self.offset == 0:
            return self.sym
        return f"{self.sym}{self.offset:+d}"


class ShapeSpec:
    """A symbolic tensor description: dims, dtype kind, and a label."""

    __slots__ = ("dims", "dtype", "name")

    def __init__(
        self,
        dims: Sequence[DimLike],
        dtype: str = "float64",
        name: str = "",
    ) -> None:
        self.dims: Tuple[Dim, ...] = tuple(Dim.of(d) for d in dims)
        self.dtype = dtype
        self.name = name

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def with_dims(self, dims: Sequence[DimLike], name: str = "") -> "ShapeSpec":
        """A copy with new dims (dtype preserved)."""
        return ShapeSpec(dims, dtype=self.dtype, name=name or self.name)

    def __repr__(self) -> str:
        inner = ", ".join(repr(d) for d in self.dims)
        tag = f" {self.name!r}" if self.name else ""
        return f"({inner}) {self.dtype}{tag}"


class ShapeEnv:
    """Symbol bindings accumulated while unifying dims across layers."""

    def __init__(self) -> None:
        self.bindings: Dict[str, Dim] = {}

    def resolve(self, dim: DimLike) -> Dim:
        """Follow symbol bindings, accumulating offsets."""
        dim = Dim.of(dim)
        seen = set()
        while dim.sym is not None and dim.sym in self.bindings:
            if dim.sym in seen:  # defensive: cyclic binding
                break
            seen.add(dim.sym)
            target = self.bindings[dim.sym]
            dim = Dim(target.sym, target.offset + dim.offset)
        return dim

    def unify(self, a: DimLike, b: DimLike, *, what: str = "dim", layer: str = "") -> Dim:
        """Unify two dims, binding symbols as needed; raises :class:`ShapeError`."""
        ra, rb = self.resolve(a), self.resolve(b)
        if ra.is_concrete and rb.is_concrete:
            if ra.offset != rb.offset:
                raise ShapeError(f"{what}: {ra!r} != {rb!r}", layer=layer)
            return ra
        if ra.is_concrete:
            ra, rb = rb, ra
        # ra symbolic; rb concrete or symbolic.
        if rb.sym == ra.sym:
            if rb.offset != ra.offset:
                raise ShapeError(f"{what}: {ra!r} != {rb!r}", layer=layer)
            return ra
        resolved = Dim(rb.sym, rb.offset - ra.offset)
        if resolved.is_concrete and resolved.offset < 0:
            raise ShapeError(
                f"{what}: {Dim(ra.sym)!r} would need negative size "
                f"({Dim(ra.sym)!r} = {resolved!r}) to satisfy {ra!r} = {rb!r}",
                layer=layer,
            )
        self.bindings[ra.sym] = resolved
        return self.resolve(ra)


# ---------------------------------------------------------------------------
# Ambient environment — keeps the layer-side protocol signatures small.
# ---------------------------------------------------------------------------

_ENV_STACK: List[ShapeEnv] = []


@contextmanager
def scoped_env(env: Optional[ShapeEnv] = None):
    """Install ``env`` (or a fresh one) as the ambient unification scope."""
    env = env or ShapeEnv()
    _ENV_STACK.append(env)
    try:
        yield env
    finally:
        _ENV_STACK.pop()


def _env() -> ShapeEnv:
    if not _ENV_STACK:
        # Layer checked in isolation: a throwaway env still catches
        # within-call inconsistencies.
        return ShapeEnv()
    return _ENV_STACK[-1]


def unify(a: DimLike, b: DimLike, *, what: str = "dim", layer: str = "") -> Dim:
    """Unify two dims in the ambient environment."""
    return _env().unify(a, b, what=what, layer=layer)


def expect_ndim(spec: ShapeSpec, ndim: int, *, layer: str, what: str = "input") -> None:
    """Require an exact rank."""
    if spec.ndim != ndim:
        raise ShapeError(
            f"{what} must be {ndim}-d, got {spec.ndim}-d {spec!r}", layer=layer
        )


def expect_axis(
    spec: ShapeSpec, axis: int, expected: DimLike, *, layer: str, what: str = "axis"
) -> Dim:
    """Unify one axis of ``spec`` against an expected dim."""
    if spec.ndim == 0 or axis >= spec.ndim or axis < -spec.ndim:
        raise ShapeError(
            f"{what}: {spec!r} has no axis {axis}", layer=layer
        )
    try:
        return unify(spec.dims[axis], expected, what=what, layer=layer)
    except ShapeError:
        raise ShapeError(
            f"{what}: input axis {axis} of {spec!r} is "
            f"{_env().resolve(spec.dims[axis])!r}, expected {Dim.of(expected)!r}",
            layer=layer,
        ) from None


def expect_dtype(
    spec: ShapeSpec, kinds: Union[str, Tuple[str, ...]], *, layer: str, what: str = "input"
) -> None:
    """Require the spec's dtype kind to be one of ``kinds``."""
    if isinstance(kinds, str):
        kinds = (kinds,)
    if spec.dtype not in kinds:
        raise ShapeError(
            f"{what} dtype must be {' or '.join(kinds)}, got {spec.dtype} ({spec!r})",
            layer=layer,
        )


def concat_spec(specs: Sequence[ShapeSpec], axis: int = -1, *, layer: str = "concat") -> ShapeSpec:
    """Symbolic concatenation: non-concat axes unify, concat axis sums."""
    if not specs:
        raise ShapeError("concat of zero tensors", layer=layer)
    first = specs[0]
    norm_axis = axis if axis >= 0 else first.ndim + axis
    total = _env().resolve(first.dims[norm_axis])
    for spec in specs[1:]:
        expect_ndim(spec, first.ndim, layer=layer, what="concat operand")
        for i in range(first.ndim):
            if i == norm_axis:
                continue
            unify(first.dims[i], spec.dims[i], what=f"concat axis {i}", layer=layer)
        other = _env().resolve(spec.dims[norm_axis])
        if total.is_concrete and other.is_concrete:
            total = Dim(None, total.offset + other.offset)
        elif other.is_concrete or total.is_concrete:
            sym = total if not total.is_concrete else other
            con = other if not total.is_concrete else total
            total = Dim(sym.sym, sym.offset + con.offset)
        else:
            raise ShapeError(
                f"cannot add two symbolic dims on concat axis: {total!r} + {other!r}",
                layer=layer,
            )
    dims = list(first.dims)
    dims[norm_axis] = total
    return first.with_dims(dims)


def elementwise_spec(a: ShapeSpec, b: ShapeSpec, *, layer: str = "elementwise") -> ShapeSpec:
    """Symbolic broadcasting for elementwise ops (numpy rules)."""
    ndim = max(a.ndim, b.ndim)
    dims_a = (Dim(None, 1),) * (ndim - a.ndim) + a.dims
    dims_b = (Dim(None, 1),) * (ndim - b.ndim) + b.dims
    out: List[Dim] = []
    env = _env()
    for i, (da, db) in enumerate(zip(dims_a, dims_b)):
        ra, rb = env.resolve(da), env.resolve(db)
        if ra == Dim(None, 1):
            out.append(rb)
        elif rb == Dim(None, 1):
            out.append(ra)
        else:
            out.append(unify(ra, rb, what=f"broadcast axis {i - ndim}", layer=layer))
    return ShapeSpec(out, dtype=a.dtype, name=a.name or b.name)


def apply_spec(module, name: str, *inputs, **kwargs):
    """Run a module's ``shape_spec`` and attach its dotted path to errors."""
    try:
        return module.shape_spec(*inputs, **kwargs)
    except ShapeError as err:
        raise err.with_layer(f"{name} ({type(module).__name__})") from None


def infer_shapes(module, *inputs, env: Optional[ShapeEnv] = None, **kwargs):
    """Infer a single module's output spec(s) in a fresh (or given) env."""
    with scoped_env(env):
        return module.shape_spec(*inputs, **kwargs)


# ---------------------------------------------------------------------------
# Whole-model validation
# ---------------------------------------------------------------------------


@dataclass
class ShapeCheckReport:
    """Result of a whole-model symbolic shape check."""

    ok: bool = True
    shapes: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"ok": self.ok, "shapes": dict(self.shapes), "error": self.error}


def check_shapes(target, batch: str = "B", strict: bool = True) -> ShapeCheckReport:
    """Symbolically validate the full RRRE dataflow of ``target``.

    ``target`` is either an :class:`repro.core.RRREConfig` (a throwaway
    model is constructed with tiny entity counts — widths, not table
    sizes, determine shapes) or a constructed :class:`repro.core.RRRE`.
    No forward pass is executed; the check is pure dim unification.

    With ``strict=True`` (default) a :class:`ShapeError` is raised on the
    first violation; otherwise it is captured in the returned report.
    """
    from repro.core.config import RRREConfig
    from repro.core.model import RRRE

    if isinstance(target, RRREConfig):
        model = RRRE(target, num_users=7, num_items=7, vocab_size=23)
    elif isinstance(target, RRRE):
        model = target
    else:
        raise TypeError(
            f"check_shapes expects RRREConfig or RRRE, got {type(target).__name__}"
        )

    report = ShapeCheckReport()
    try:
        with scoped_env() as env:
            report.shapes = _trace_rrre(model, batch=batch, env=env)
    except ShapeError as err:
        report.ok = False
        report.error = str(err)
        if strict:
            raise
    return report


def _trace_rrre(model, batch: str, env: ShapeEnv) -> Dict[str, str]:
    """Mirror ``RRRE.forward`` with symbolic tensors; returns named shapes."""
    cfg = model.config
    B = Dim(batch)
    L = Dim.of(cfg.max_len)
    observed: Dict[str, str] = {}

    def note(name: str, spec) -> ShapeSpec:
        observed[name] = repr(spec)
        return spec

    # Review encoders: (N, L) token ids -> (N, review_dim) encodings.
    tokens_u = ShapeSpec((Dim("Nu"), L), "int64", "token_ids")
    mask_u = ShapeSpec((Dim("Nu"), L), "bool", "token_mask")
    enc_u = note("user_encoder", apply_spec(model.user_encoder, "user_encoder", tokens_u, mask_u))
    unify(enc_u.dims[-1], cfg.review_dim, what="user encoder output width", layer="user_encoder")

    tokens_i = ShapeSpec((Dim("Ni"), L), "int64", "token_ids")
    mask_i = ShapeSpec((Dim("Ni"), L), "bool", "token_mask")
    enc_i = note("item_encoder", apply_spec(model.item_encoder, "item_encoder", tokens_i, mask_i))
    unify(enc_i.dims[-1], cfg.review_dim, what="item encoder output width", layer="item_encoder")

    # UserNet: gather encodings into (B, s_u, k) and pool.
    u_reviews = ShapeSpec((B, cfg.s_u, enc_u.dims[-1]), "float64", "u_reviews")
    e_u = note(
        "user_id_embedding",
        apply_spec(model.user_id_embedding, "user_id_embedding", ShapeSpec((B,), "int64", "user_ids")),
    )
    u_others = apply_spec(
        model.item_id_embedding,
        "item_id_embedding",
        ShapeSpec((B, cfg.s_u), "int64", "user_slot_items"),
    )
    u_mask = ShapeSpec((B, cfg.s_u), "bool", "user_slot_mask")
    x_u, attn_u = apply_spec(model.user_net, "user_net", u_reviews, e_u, u_others, u_mask)
    note("x_u", x_u)
    note("user_attention", attn_u)

    # ItemNet.
    i_reviews = ShapeSpec((B, cfg.s_i, enc_i.dims[-1]), "float64", "i_reviews")
    e_i = note(
        "item_id_embedding/items",
        apply_spec(model.item_id_embedding, "item_id_embedding", ShapeSpec((B,), "int64", "item_ids")),
    )
    i_others = apply_spec(
        model.user_id_embedding,
        "user_id_embedding",
        ShapeSpec((B, cfg.s_i), "int64", "item_slot_users"),
    )
    i_mask = ShapeSpec((B, cfg.s_i), "bool", "item_slot_mask")
    y_i, attn_i = apply_spec(model.item_net, "item_net", i_reviews, e_i, i_others, i_mask)
    note("y_i", y_i)
    note("item_attention", attn_i)

    # Reliability head (Eq. 9): softmax over W[x_u, y_i] + b.
    joint = concat_spec([x_u, y_i], axis=-1, layer="reliability_head input")
    joint = apply_spec(model.dropout, "dropout", joint)
    logits = note(
        "reliability_logits",
        apply_spec(model.reliability_head, "reliability_head", joint),
    )
    expect_axis(logits, -1, 2, layer="reliability_head", what="reliability classes")

    # Rating head (Eq. 12): FM([(e_u + W_h x_u), (e_i + W_e y_i)]).
    proj_u = apply_spec(model.w_h, "w_h", x_u)
    proj_i = apply_spec(model.w_e, "w_e", y_i)
    side_u = elementwise_spec(e_u, proj_u, layer="rating head (e_u + W_h x_u)")
    side_i = elementwise_spec(e_i, proj_i, layer="rating head (e_i + W_e y_i)")
    z = concat_spec([side_u, side_i], axis=-1, layer="fm input")
    rating = note("rating", apply_spec(model.fm, "fm", apply_spec(model.dropout, "dropout", z)))
    expect_ndim(rating, 1, layer="fm", what="rating output")
    unify(rating.dims[0], B, what="rating batch axis", layer="fm")
    return observed
