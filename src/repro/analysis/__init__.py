"""Static analysis suite for the RRRE reproduction (``repro.analysis``).

Four cooperating passes certify a model/config *before* any training
compute is spent (see ``docs/analysis.md``):

* :mod:`~repro.analysis.shapes` — symbolic shape/dtype inference through
  every :mod:`repro.nn` layer and the full RRRE dataflow
  (:func:`check_shapes`), with errors naming the offending layer and the
  mismatched axes;
* :mod:`~repro.analysis.graph` — autograd-tape validation
  (:func:`validate_graph`): dead parameters, accidental detachment,
  non-finite(-prone) ops, dropout-mode bugs, and in-place mutation of
  tape-recorded arrays via version counters;
* :mod:`~repro.analysis.gradcheck` — finite-difference gradient checking
  (:func:`gradcheck`) with a registered case per shipped layer
  (:func:`run_layer_gradchecks`);
* :mod:`~repro.analysis.lint` — an AST linter (:func:`lint_paths`)
  enforcing RNG/clock/dtype/mutation discipline across the repo;
* :mod:`~repro.analysis.concurrency` — lock-discipline rules
  (``LOCK001``–``LOCK004``), an Eraser-style dynamic race detector over
  :func:`make_lock` traced locks, and a wait-for-graph deadlock
  watchdog for the threaded serving/observability runtime
  (:func:`analyze_concurrency`).

Everything is surfaced on the command line via ``python -m repro
analyze`` and as a training pre-flight via
``RRRETrainer.fit(validate="strict")`` (:func:`preflight`).
"""

from __future__ import annotations

from typing import Dict, Optional

from .gradcheck import (
    GradcheckFailure,
    GradcheckResult,
    LAYER_CASES,
    gradcheck,
    register_layer_case,
    run_layer_gradchecks,
)
from .graph import (
    GraphIssue,
    GraphReport,
    GraphSnapshot,
    snapshot_graph,
    track_mutation_sites,
    validate_graph,
)
from .lint import RULES, LintReport, LintViolation, lint_paths, lint_source
from .concurrency import (
    LOCK_RULES,
    DeadlockError,
    DeadlockWatchdog,
    RaceDetector,
    RaceReport,
    TracedLock,
    TracedRLock,
    analyze_concurrency,
    disable_lock_tracing,
    enable_lock_tracing,
    instrument_class,
    lock_tracing,
    make_lock,
    make_rlock,
    race_detection,
    tracing_enabled,
)
# The LOCK001–LOCK004 descriptions join the rule catalogue as soon as
# the package is imported (lint_source also merges them on demand).
RULES.update(LOCK_RULES)

from .shapes import (
    Dim,
    ShapeCheckReport,
    ShapeEnv,
    ShapeError,
    ShapeSpec,
    apply_spec,
    check_shapes,
    infer_shapes,
    scoped_env,
)

__all__ = [
    "Dim",
    "ShapeSpec",
    "ShapeEnv",
    "ShapeError",
    "ShapeCheckReport",
    "scoped_env",
    "apply_spec",
    "infer_shapes",
    "check_shapes",
    "GraphIssue",
    "GraphReport",
    "GraphSnapshot",
    "snapshot_graph",
    "track_mutation_sites",
    "validate_graph",
    "GradcheckFailure",
    "GradcheckResult",
    "LAYER_CASES",
    "gradcheck",
    "register_layer_case",
    "run_layer_gradchecks",
    "RULES",
    "LintReport",
    "LintViolation",
    "lint_source",
    "lint_paths",
    "DeadlockError",
    "DeadlockWatchdog",
    "RaceDetector",
    "RaceReport",
    "TracedLock",
    "TracedRLock",
    "analyze_concurrency",
    "disable_lock_tracing",
    "enable_lock_tracing",
    "instrument_class",
    "lock_tracing",
    "make_lock",
    "make_rlock",
    "race_detection",
    "tracing_enabled",
    "PreflightError",
    "preflight",
]


class PreflightError(RuntimeError):
    """A model failed pre-flight validation before training."""


def preflight(model, slots=None, table=None, mode: str = "shapes") -> Dict[str, object]:
    """Validate a model before spending training compute.

    ``mode="shapes"`` runs the symbolic shape check alone (no forward
    pass).  ``mode="strict"`` additionally executes one tiny real
    forward pass in eval mode (so the model's dropout RNG stream is not
    consumed and training stays bitwise-deterministic) and validates the
    resulting autograd tape — dead parameters, detachment, non-finite
    values, dropout-mode bugs.  ``slots``/``table`` are required for
    strict mode.

    Returns a JSON-able report dict; raises :class:`PreflightError` on
    any failure.
    """
    import numpy as np

    from .shapes import ShapeError as _ShapeError

    if mode not in ("shapes", "strict"):
        raise ValueError(f"preflight mode must be 'shapes' or 'strict', got {mode!r}")
    report: Dict[str, object] = {"mode": mode}

    try:
        report["shapes"] = check_shapes(model, strict=True).to_dict()
    except _ShapeError as err:
        raise PreflightError(f"shape check failed: {err}") from err

    if mode == "strict":
        if slots is None or table is None:
            raise ValueError("preflight mode='strict' requires slots and table")
        from repro.core.losses import joint_loss

        # One real (u, i) pair whose slot rows are non-empty, so every
        # branch of the forward runs on meaningful data.
        user = int(np.argmax(slots.user_slot_mask.any(axis=1)))
        item = int(np.argmax(slots.item_slot_mask.any(axis=1)))
        was_training = model.training
        model.eval()
        try:
            out = model(
                np.asarray([user], dtype=np.int64),
                np.asarray([item], dtype=np.int64),
                slots,
                table,
            )
            parts = joint_loss(
                out.rating,
                out.reliability_logits,
                np.asarray([3.0]),
                np.asarray([1]),
                lambda_weight=model.config.lambda_weight,
                biased=model.config.biased_loss,
            )
            snapshot = snapshot_graph(parts.total)
            graph_report = validate_graph(
                parts.total, model=model, snapshot=snapshot, expect_training=False
            )
        finally:
            if was_training:
                model.train()
        report["graph"] = graph_report.to_dict()
        if not graph_report.ok:
            details = "; ".join(str(issue) for issue in graph_report.errors)
            raise PreflightError(f"graph validation failed: {details}")
        model.zero_grad()
    return report
