"""Concurrency correctness suite: static lock lint, races, deadlocks.

Three cooperating layers over the threaded runtime (:mod:`repro.serve`,
:mod:`repro.obs`):

* :mod:`.lint_locks` — static lock-discipline rules ``LOCK001``–``LOCK004``
  (wired into the main :mod:`repro.analysis.lint` pass);
* :mod:`.locks` + :mod:`.races` — :func:`make_lock` traced-lock factory,
  per-thread locksets, and the Eraser-style dynamic race detector;
* :mod:`.watchdog` — background wait-for-graph sweeps, held-too-long
  alarms, and ``repro_lock_*`` metric export.

CLI surface: ``python -m repro analyze --concurrency [--dynamic]``.
"""

from .lint_locks import LOCK_RULES, LockModel, build_lock_models, collect_lock_violations
from .locks import (
    DeadlockError,
    LockStats,
    TracedLock,
    TracedRLock,
    current_lock_names,
    current_lockset,
    disable_lock_tracing,
    enable_lock_tracing,
    find_deadlock,
    lock_stats_snapshot,
    lock_tracing,
    make_lock,
    make_rlock,
    publish_lock_metrics,
    set_lock_metrics,
    tracing_enabled,
)
from .races import (
    RaceDetector,
    RaceReport,
    active_detector,
    install_detector,
    instrument_class,
    race_detection,
    uninstall_detector,
    uninstrument_class,
)
from .watchdog import DeadlockWatchdog, LockAlert
from .harness import analyze_concurrency, run_dynamic_exercise

__all__ = [
    "DeadlockError",
    "DeadlockWatchdog",
    "LOCK_RULES",
    "LockAlert",
    "LockModel",
    "LockStats",
    "RaceDetector",
    "RaceReport",
    "TracedLock",
    "TracedRLock",
    "active_detector",
    "analyze_concurrency",
    "build_lock_models",
    "collect_lock_violations",
    "current_lock_names",
    "current_lockset",
    "disable_lock_tracing",
    "enable_lock_tracing",
    "find_deadlock",
    "install_detector",
    "instrument_class",
    "lock_stats_snapshot",
    "lock_tracing",
    "make_lock",
    "make_rlock",
    "publish_lock_metrics",
    "race_detection",
    "run_dynamic_exercise",
    "set_lock_metrics",
    "tracing_enabled",
    "uninstall_detector",
    "uninstrument_class",
]
