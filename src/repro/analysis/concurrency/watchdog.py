"""Runtime deadlock watchdog over the traced-lock wait-for graph.

:class:`DeadlockWatchdog` is a daemon thread that periodically:

* sweeps the wait-for graph (:func:`~.locks.find_deadlock` from every
  blocked thread) and records any stable cycle — blocked acquires also
  self-detect, so the watchdog catches cycles involving *plain* waits
  (e.g. a ``Condition``) that never re-enter the traced acquire loop;
* raises a **held-too-long alarm** for any traced lock held beyond
  ``hold_alarm`` seconds — the precursor signature of a deadlock or a
  blocking call under a lock;
* publishes the aggregate ``repro_lock_*`` gauges through
  :func:`~.locks.publish_lock_metrics` and emits ``lock_stats`` /
  ``lock_alert`` point events on the ambient tracer, which the
  ``watch`` status board renders.

The watchdog is passive observation only: it never acquires the locks
it watches, so it cannot itself deadlock with application code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .locks import (
    find_deadlock,
    lock_stats_snapshot,
    publish_lock_metrics,
    recorded_deadlocks,
    traced_locks,
    waiting_threads,
)

__all__ = ["DeadlockWatchdog", "LockAlert"]


@dataclass
class LockAlert:
    """One watchdog finding."""

    kind: str  #: ``"deadlock"`` or ``"held_too_long"``
    detail: str
    lock: str = ""
    thread: str = ""
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "lock": self.lock,
            "thread": self.thread,
            "seconds": round(self.seconds, 4),
        }


class DeadlockWatchdog:
    """Background sweeper for lock health; see the module docstring.

    ``registry`` (a :class:`repro.obs.metrics.MetricsRegistry`) receives
    the gauge export each sweep when given; ``on_alert`` is called with
    each new :class:`LockAlert` (in the watchdog thread).
    """

    def __init__(
        self,
        interval: float = 0.25,
        hold_alarm: float = 1.0,
        registry=None,
        on_alert: Optional[Callable[[LockAlert], None]] = None,
    ) -> None:
        self.interval = interval
        self.hold_alarm = hold_alarm
        self.registry = registry
        self.on_alert = on_alert
        self._lock = threading.Lock()
        self._alerts: List[LockAlert] = []
        self._alarmed: set = set()
        self._seen_deadlocks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "DeadlockWatchdog":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-lock-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "DeadlockWatchdog":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- results -------------------------------------------------------
    def alerts(self) -> List[LockAlert]:
        with self._lock:
            return list(self._alerts)

    # -- sweep ---------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sweep()

    def sweep(self) -> List[LockAlert]:
        """One pass: deadlock scan, hold alarms, metric/event export.

        Public so tests (and the analyze harness) can drive a sweep
        synchronously instead of sleeping.
        """
        fresh: List[LockAlert] = []
        fresh.extend(self._sweep_deadlocks())
        fresh.extend(self._sweep_holds())
        self._export(fresh)
        if fresh:
            with self._lock:
                self._alerts.extend(fresh)
            if self.on_alert is not None:
                for alert in fresh:
                    self.on_alert(alert)
        return fresh

    def _sweep_deadlocks(self) -> List[LockAlert]:
        fresh: List[LockAlert] = []
        # Cycles the blocked acquires recorded themselves.
        recorded = recorded_deadlocks()
        for cycle in recorded[self._seen_deadlocks:]:
            fresh.append(self._cycle_alert(cycle))
        self._seen_deadlocks = len(recorded)
        # Cycles still live in the graph right now.
        for ident in list(waiting_threads()):
            cycle = find_deadlock(ident)
            if cycle is not None:
                alert = self._cycle_alert(cycle)
                if not any(a.detail == alert.detail for a in self._alerts + fresh):
                    fresh.append(alert)
        return fresh

    def _cycle_alert(self, cycle: List[Tuple[str, str]]) -> LockAlert:
        detail = " -> ".join(f"{t} waits on {lock}" for t, lock in cycle)
        return LockAlert(
            kind="deadlock",
            detail=detail,
            lock=cycle[0][1],
            thread=cycle[0][0],
        )

    def _sweep_holds(self) -> List[LockAlert]:
        fresh: List[LockAlert] = []
        now = time.perf_counter()
        for lock in traced_locks():
            owner = lock.owner
            if owner is None:
                continue
            held = now - lock.acquired_at
            if held < self.hold_alarm:
                self._alarmed.discard(id(lock))
                continue
            if id(lock) in self._alarmed:
                continue  # one alarm per continuous hold
            self._alarmed.add(id(lock))
            fresh.append(
                LockAlert(
                    kind="held_too_long",
                    detail=(
                        f"{lock.name} held by {lock.owner_name!r} for "
                        f"{held:.2f}s (alarm at {self.hold_alarm:.2f}s)"
                    ),
                    lock=lock.name,
                    thread=lock.owner_name,
                    seconds=held,
                )
            )
        return fresh

    def _export(self, fresh: List[LockAlert]) -> None:
        # Lazy obs import: analysis must stay importable without obs.
        from ...obs.trace import emit_event

        if self.registry is not None:
            publish_lock_metrics(self.registry)
        stats = lock_stats_snapshot()
        if stats:
            emit_event(
                "lock_stats",
                locks=len(stats),
                waiters=len(waiting_threads()),
                contended=int(sum(s["contended"] for s in stats.values())),
                acquisitions=int(sum(s["acquisitions"] for s in stats.values())),
                hold_max=round(max(s["hold_max"] for s in stats.values()), 4),
                deadlocks=len(recorded_deadlocks()),
            )
        for alert in fresh:
            emit_event("lock_alert", **alert.to_dict())
