"""The ``analyze --concurrency [--dynamic]`` entry point.

Static half: run the ``LOCK001``–``LOCK004`` rules (and only those —
the general ``--lint`` pass owns the rest) over a target tree and
summarize the per-class lock models the pass inferred.

Dynamic half (:func:`run_dynamic_exercise`): under
:func:`~.locks.lock_tracing`, instrument the threaded serving classes
(:class:`~repro.serve.cache.TTLCache`,
:class:`~repro.serve.resilience.AdmissionController`,
:class:`~repro.serve.resilience.CircuitBreaker`) with the Eraser
detector and hammer them from worker threads; the exercise must finish
with **zero candidate races**.  Two *self-checks* prove the tooling
works before trusting that zero: a deliberately racy class must produce
a race report, and a live ABBA acquisition must raise
:class:`~.locks.DeadlockError`.
"""

from __future__ import annotations

import ast
import threading
from typing import Dict, List, Sequence

from ..lint import LintViolation, lint_source, _iter_python_files
from . import lint_locks
from .locks import (
    DeadlockError,
    TracedLock,
    clear_tracing_state,
    lock_stats_snapshot,
    lock_tracing,
)
from .races import (
    RaceReport,
    install_detector,
    instrument_class,
    uninstall_detector,
    uninstrument_class,
)

__all__ = ["analyze_concurrency", "run_dynamic_exercise"]


def _static_pass(target: str) -> Dict[str, object]:
    violations: List[LintViolation] = []
    models: Dict[str, Dict[str, object]] = {}
    files = _iter_python_files([target])
    for path in files:
        source = path.read_text()
        violations.extend(
            v for v in lint_source(source, str(path)) if v.rule.startswith("LOCK")
        )
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        file_models = lint_locks.build_lock_models(tree, str(path))
        if file_models:
            models[str(path)] = {
                name: model.to_dict() for name, model in file_models.items()
            }
    return {
        "ok": not violations,
        "files_checked": len(files),
        "violations": [v.to_dict() for v in violations],
        "models": models,
    }


class _RacySelfCheck:
    """Deliberately unguarded counter the detector must flag."""

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        self.value = self.value + 1


def _self_check_races() -> bool:
    detector = install_detector()
    try:
        instrument_class(_RacySelfCheck)
        victim = _RacySelfCheck()
        threads = [
            threading.Thread(
                target=lambda: [victim.bump() for _ in range(200)],
                name=f"race-self-check-{i}",
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return any(
            r.cls == "_RacySelfCheck" and r.field == "value"
            for r in detector.races()
        )
    finally:
        uninstrument_class(_RacySelfCheck)
        uninstall_detector()


def _self_check_deadlock() -> bool:
    lock_a = TracedLock("self-check.a")
    lock_b = TracedLock("self-check.b")
    caught = []
    gate_a = threading.Event()
    gate_b = threading.Event()

    def ab() -> None:
        try:
            with lock_a:
                gate_a.set()
                gate_b.wait(timeout=5.0)
                with lock_b:
                    pass
        except DeadlockError:
            caught.append(True)

    def ba() -> None:
        try:
            with lock_b:
                gate_b.set()
                gate_a.wait(timeout=5.0)
                with lock_a:
                    pass
        except DeadlockError:
            caught.append(True)

    threads = [
        threading.Thread(target=ab, name="deadlock-self-check-ab"),
        threading.Thread(target=ba, name="deadlock-self-check-ba"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    return bool(caught)


#: Fields the serving classes deliberately leave unguarded; each entry
#: names a single-writer or GIL-atomic pattern the Eraser machine would
#: misread as a race.
_SERVE_EXCLUSIONS: Dict[str, Sequence[str]] = {
    # CacheStats counters are only ever mutated by TTLCache methods that
    # hold the cache lock, but the *stats object reference* itself is
    # read lock-free by monitoring (`cache.stats.to_dict()`), which is
    # safe: the reference never changes after __init__.
    "CacheStats": ("hits", "misses", "evictions", "expirations", "stale_hits"),
}


def run_dynamic_exercise(
    threads: int = 8, iterations: int = 300
) -> Dict[str, object]:
    """Hammer the instrumented serving classes; see the module docstring."""
    from ...serve.cache import CacheStats, TTLCache
    from ...serve.resilience import AdmissionController, CircuitBreaker, ServerOverloaded

    clear_tracing_state()
    with lock_tracing():
        racy_detected = _self_check_races()
        deadlock_detected = _self_check_deadlock()
        clear_tracing_state()

        cache = TTLCache(max_size=64, ttl=30.0)
        admission = AdmissionController(max_inflight=threads * 2)
        breaker = CircuitBreaker(failure_threshold=3, reset_after=0.01)
        detector = install_detector()
        classes = [
            (TTLCache, ()),
            (CacheStats, _SERVE_EXCLUSIONS["CacheStats"]),
            (AdmissionController, ()),
            (CircuitBreaker, ()),
        ]
        for cls, exclude in classes:
            instrument_class(cls, exclude=exclude)
        try:
            def worker(worker_id: int) -> None:
                for i in range(iterations):
                    key = (worker_id * 7 + i) % 40
                    cache.put(key, i)
                    cache.get((i * 3) % 40)
                    if i % 11 == 0:
                        cache.purge_expired()
                    try:
                        admission.acquire()
                    except ServerOverloaded:
                        continue
                    try:
                        if breaker.allow():
                            if i % 13 == 0:
                                breaker.record_failure()
                            else:
                                breaker.record_success()
                    finally:
                        admission.release(0.0001)

            pool = [
                threading.Thread(target=worker, args=(n,), name=f"dyn-exercise-{n}")
                for n in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            races: List[RaceReport] = detector.races()
        finally:
            for cls, _exclude in classes:
                uninstrument_class(cls)
            uninstall_detector()
        stats = lock_stats_snapshot()

    return {
        "ok": not races and racy_detected and deadlock_detected,
        "races": [r.to_dict() for r in races],
        "self_check": {
            "racy_class_detected": racy_detected,
            "abba_deadlock_detected": deadlock_detected,
        },
        "exercise": {
            "threads": threads,
            "iterations": iterations,
            "locks": stats,
        },
    }


def analyze_concurrency(
    target: str = "src/repro", dynamic: bool = False
) -> Dict[str, object]:
    """The full ``--concurrency`` pass payload (static, plus dynamic)."""
    payload = _static_pass(target)
    if dynamic:
        dynamic_payload = run_dynamic_exercise()
        payload["dynamic"] = dynamic_payload
        payload["ok"] = bool(payload["ok"]) and bool(dynamic_payload["ok"])
    return payload
