"""Eraser-style dynamic lockset race detection.

The detector maintains, per ``(object, field)``, the classic Eraser
state machine (Savage et al., SOSP '97):

* **VIRGIN** — never accessed.
* **EXCLUSIVE** — touched by one thread only; no lockset tracking yet
  (initialization handoff is free).
* **SHARED** — read by multiple threads; the *candidate lockset* (the
  intersection of the locks held at every multi-thread access) is
  refined, but read-only sharing never races.
* **SHARED-MODIFIED** — written by more than one thread; when the
  candidate lockset becomes empty there is no lock that consistently
  guards the field, and a :class:`RaceReport` fires with the stacks of
  the two conflicting accesses.

Locksets come from :func:`~repro.analysis.concurrency.locks.current_lockset`,
so only :class:`TracedLock` acquisitions count — enable tracing *before*
constructing the objects under test.

Classes opt in via :func:`instrument_class`, which wraps
``__setattr__`` (writes) and ``__getattribute__`` (reads of data
attributes — plain ``__dict__`` entries or ``__slots__``).  The wrap is
a no-op while no detector is installed, and per-field ``exclude`` lists
document deliberately unguarded fields (GIL-atomic reference swaps,
single-writer handoffs) at the instrumentation site.

Granularity is the *attribute binding*: ``self.count += 1`` is a read
plus a write and is caught; ``self._entries[k] = v`` is only a read of
``_entries`` (the mutation happens inside the dict), so container
discipline is LOCK001's job statically, not this detector's.
"""

from __future__ import annotations

import sys
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Type

from .locks import current_lock_names, current_lockset

__all__ = [
    "RaceDetector",
    "RaceReport",
    "active_detector",
    "install_detector",
    "instrument_class",
    "race_detection",
    "uninstall_detector",
    "uninstrument_class",
]

# Eraser states.
_EXCLUSIVE = 1
_SHARED = 2
_SHARED_MODIFIED = 3

_TLS = threading.local()


def _brief_stack(skip: int = 3, limit: int = 10) -> Tuple[str, ...]:
    """``file:line in func`` frames of the caller, innermost last."""
    frame = sys._getframe(skip)
    summary = traceback.extract_stack(frame, limit=limit)
    return tuple(
        f"{entry.filename}:{entry.lineno} in {entry.name}" for entry in summary
    )


@dataclass
class _AccessInfo:
    """The last interesting access of a field (for the race report)."""

    thread: str
    write: bool
    locks: Tuple[str, ...]
    stack: Tuple[str, ...]


@dataclass
class _FieldState:
    state: int
    owner: int
    lockset: Optional[FrozenSet[int]] = None
    last: Optional[_AccessInfo] = None
    reported: bool = False


@dataclass
class RaceReport:
    """A candidate data race: two accesses with no common lock."""

    cls: str
    field: str
    first: _AccessInfo
    second: _AccessInfo

    def __str__(self) -> str:
        lines = [
            f"candidate race on {self.cls}.{self.field}:",
            f"  {self.first.thread} "
            f"{'wrote' if self.first.write else 'read'} it holding "
            f"{list(self.first.locks) or 'no locks'}:",
        ]
        lines.extend(f"    {frame}" for frame in self.first.stack[-4:])
        lines.append(
            f"  {self.second.thread} "
            f"{'wrote' if self.second.write else 'read'} it holding "
            f"{list(self.second.locks) or 'no locks'}:"
        )
        lines.extend(f"    {frame}" for frame in self.second.stack[-4:])
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "class": self.cls,
            "field": self.field,
            "first": {
                "thread": self.first.thread,
                "write": self.first.write,
                "locks": list(self.first.locks),
                "stack": list(self.first.stack),
            },
            "second": {
                "thread": self.second.thread,
                "write": self.second.write,
                "locks": list(self.second.locks),
                "stack": list(self.second.stack),
            },
        }


class RaceDetector:
    """Process-wide lockset state machine over instrumented fields."""

    def __init__(self) -> None:
        #: Guards the field map; a leaf lock — record() takes nothing else.
        self._guard = threading.Lock()
        self._fields: Dict[Tuple[int, str, str], _FieldState] = {}
        self.reports: List[RaceReport] = []

    # -- recording -----------------------------------------------------
    def record(self, obj: object, name: str, write: bool) -> None:
        """Feed one attribute access into the state machine."""
        if getattr(_TLS, "busy", False):
            return
        _TLS.busy = True
        try:
            self._record(obj, name, write)
        finally:
            _TLS.busy = False

    def _record(self, obj: object, name: str, write: bool) -> None:
        ident = threading.get_ident()
        key = (id(obj), type(obj).__name__, name)
        lockset = current_lockset()
        with self._guard:
            state = self._fields.get(key)
            if state is None:
                self._fields[key] = _FieldState(state=_EXCLUSIVE, owner=ident)
                return
            if state.reported:
                return
            if state.state == _EXCLUSIVE:
                if state.owner == ident:
                    return  # single-thread fast path: no capture at all
                # First cross-thread access: start lockset tracking.
                state.state = _SHARED_MODIFIED if write else _SHARED
                state.lockset = lockset
                state.last = self._access_info(write, lockset)
                if write and not lockset:
                    # Written by a second thread with no locks at all —
                    # report now; EXCLUSIVE kept no first stack, so both
                    # sides are this access and a synthesized origin.
                    self._report(key, state, self._origin_info(state))
                return
            assert state.lockset is not None
            if write and state.state == _SHARED:
                state.state = _SHARED_MODIFIED
            previous = state.last
            state.lockset = state.lockset & lockset
            state.last = self._access_info(write, lockset)
            if state.state == _SHARED_MODIFIED and not state.lockset:
                self._report(key, state, previous)

    def _access_info(self, write: bool, lockset: FrozenSet[int]) -> _AccessInfo:
        return _AccessInfo(
            thread=threading.current_thread().name,
            write=write,
            locks=current_lock_names(),
            stack=_brief_stack(skip=5),
        )

    def _origin_info(self, state: _FieldState) -> _AccessInfo:
        return _AccessInfo(
            thread=f"<thread-{state.owner}> (exclusive phase)",
            write=True,
            locks=(),
            stack=("<initialization — stack not retained in EXCLUSIVE state>",),
        )

    def _report(
        self,
        key: Tuple[int, str, str],
        state: _FieldState,
        previous: Optional[_AccessInfo],
    ) -> None:
        state.reported = True
        assert state.last is not None
        first = previous if previous is not None else self._origin_info(state)
        self.reports.append(
            RaceReport(cls=key[1], field=key[2], first=first, second=state.last)
        )

    # -- results -------------------------------------------------------
    def races(self) -> List[RaceReport]:
        """The candidate races observed so far."""
        with self._guard:
            return list(self.reports)

    def clear(self) -> None:
        with self._guard:
            self._fields.clear()
            self.reports.clear()


_ACTIVE: Optional[RaceDetector] = None


def active_detector() -> Optional[RaceDetector]:
    """The installed detector, or ``None`` (the instrumentation no-op)."""
    return _ACTIVE


def install_detector(detector: Optional[RaceDetector] = None) -> RaceDetector:
    """Install (and return) the process-wide detector."""
    global _ACTIVE
    if detector is None:
        detector = RaceDetector()
    _ACTIVE = detector
    return detector


def uninstall_detector() -> None:
    """Detach the detector; instrumented classes revert to no-ops."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def race_detection():
    """Install a fresh detector for the ``with`` block; yields it."""
    detector = install_detector()
    try:
        yield detector
    finally:
        uninstall_detector()


def _slot_names(cls: Type) -> FrozenSet[str]:
    names: set = set()
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.update(slots)
    return frozenset(names)


def instrument_class(cls: Type, exclude: Sequence[str] = ()) -> Type:
    """Shim ``cls`` so attribute accesses feed the active detector.

    ``exclude`` names fields deliberately left unguarded — each entry
    should carry a justification comment at the call site.  Reads are
    only recorded for *data* attributes (instance ``__dict__`` entries
    or declared slots), so method lookups stay cheap.  Idempotent;
    reversible with :func:`uninstrument_class`.
    """
    if getattr(cls, "_repro_race_originals", None) is not None:
        return cls
    excluded = frozenset(exclude)
    slots = _slot_names(cls)
    orig_setattr = cls.__setattr__
    orig_getattribute = cls.__getattribute__

    def traced_setattr(self, name: str, value: object) -> None:
        detector = _ACTIVE
        if detector is not None and not name.startswith("__") and name not in excluded:
            detector.record(self, name, write=True)
        orig_setattr(self, name, value)

    def traced_getattribute(self, name: str) -> object:
        value = orig_getattribute(self, name)
        if name.startswith("__") or name in excluded:
            return value
        detector = _ACTIVE
        if detector is not None:
            if name in slots:
                detector.record(self, name, write=False)
            else:
                try:
                    instance_dict = orig_getattribute(self, "__dict__")
                except AttributeError:
                    instance_dict = None
                if instance_dict is not None and name in instance_dict:
                    detector.record(self, name, write=False)
        return value

    cls.__setattr__ = traced_setattr
    cls.__getattribute__ = traced_getattribute
    cls._repro_race_originals = (orig_setattr, orig_getattribute)
    return cls


def uninstrument_class(cls: Type) -> Type:
    """Undo :func:`instrument_class`."""
    originals = cls.__dict__.get("_repro_race_originals")
    if originals is not None:
        cls.__setattr__, cls.__getattribute__ = originals
        del cls._repro_race_originals
    return cls
