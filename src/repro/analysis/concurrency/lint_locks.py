"""Static lock-discipline analysis: the ``LOCK001``–``LOCK004`` rules.

The pass builds a **per-class lock model** from the AST: which instance
attributes hold locks (``self._lock = threading.Lock()`` / ``RLock`` /
``Condition``, the :func:`~repro.analysis.concurrency.locks.make_lock`
factories, or an ``__init__`` parameter named like a lock), and which
instance attributes each method reads or writes inside vs. outside
``with self._lock:`` blocks.  From the model it derives:

``LOCK001``
    An attribute written under a lock in one place is read or written
    *without* that lock elsewhere.  The guard is inferred as the
    intersection of the locksets of every locked write; methods named
    ``*_locked`` are treated as called-with-the-lock-held helpers and
    exempt (the convention the codebase uses for breaker internals).
``LOCK002``
    Two locks are nested in opposite orders somewhere in the class —
    the classic ABBA deadlock shape.  Both acquisition sites are
    flagged.
``LOCK003``
    A blocking call while holding a lock: ``time.sleep``, bare
    ``open()``, socket/subprocess entry points, file/socket methods
    (``.write``/``.flush``/``.read``/``.recv``/``.send``…),
    ``Future.result()`` / ``.wait()`` / ``.get()`` without a timeout,
    and zero-argument ``.join()``.
``LOCK004``
    A manual ``<lock>.acquire()`` whose matching ``.release()`` is not
    in a ``try/finally`` — an exception between the two leaks the lock
    forever.  Applies to known lock attributes of the class model and
    to any name containing ``lock``/``mutex``.

Like every lint rule, a finding is suppressed in place with
``# lint: allow[LOCK00x] — justification``.  The analysis is
class-local and intentionally conservative: ``__init__`` writes are
construction-time and ignored, and code inside nested functions
(thread bodies, callbacks) is skipped because its locking context is
unknowable statically — the dynamic detector covers it instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lint import LintViolation

__all__ = ["LOCK_RULES", "LockModel", "collect_lock_violations", "build_lock_models"]

#: rule ID → one-line description (merged into ``repro.analysis.RULES``).
LOCK_RULES: Dict[str, str] = {
    "LOCK001": "shared attribute accessed both under and outside its guarding lock",
    "LOCK002": "inconsistent lock acquisition order across methods (potential deadlock)",
    "LOCK003": "blocking call (I/O, sleep, result/wait without timeout) while holding a lock",
    "LOCK004": "manual lock acquire() without a try/finally release",
}

#: Constructors whose result is a lock when bound to ``self.<attr>``.
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "TracedLock", "TracedRLock"}
_LOCK_FACTORIES = {"make_lock", "make_rlock"}

#: Container methods that mutate their receiver: a call
#: ``self.x.append(...)`` counts as a *write* of ``x``.
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "sort",
}

#: Method calls that block on I/O or synchronization (LOCK003).
_BLOCKING_METHODS = {
    "write",
    "flush",
    "read",
    "readline",
    "readlines",
    "recv",
    "recvfrom",
    "send",
    "sendall",
    "connect",
    "accept",
}

#: Methods that block *unless* given a timeout argument (LOCK003).
_TIMEOUT_METHODS = {"result", "wait", "get"}

#: Module roots whose calls are blocking wherever they appear (LOCK003).
_BLOCKING_ROOTS = {"socket", "subprocess", "requests", "urllib"}

#: Substrings marking a non-``self`` name as lock-like for LOCK004.
_LOCKISH = ("lock", "mutex")


def _attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` → ``["a", "b", "c"]``; ``[]`` when not a pure name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _self_attr(node: ast.AST) -> Optional[str]:
    """The first attribute off ``self`` in a chain, or ``None``.

    ``self.x`` → ``x``; ``self.x.y`` → ``x``; ``self.x[k]`` → ``x``.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
        while isinstance(node, ast.Subscript):
            node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


@dataclass
class _Access:
    """One attribute touch: where, how, and under which locks."""

    attr: str
    write: bool
    held: Tuple[str, ...]
    line: int
    col: int
    method: str


@dataclass
class LockModel:
    """The per-class lock model the rules are derived from."""

    name: str
    line: int
    locks: Set[str]
    accesses: List[_Access]
    #: ``(outer, inner)`` → first acquisition site observed.
    order_pairs: Dict[Tuple[str, str], Tuple[int, int]]

    def guarded_attrs(self) -> Dict[str, Tuple[str, ...]]:
        """Attribute → inferred guard lockset (non-empty intersections only)."""
        guards: Dict[str, Tuple[str, ...]] = {}
        by_attr: Dict[str, List[_Access]] = {}
        for access in self.accesses:
            by_attr.setdefault(access.attr, []).append(access)
        for attr, accesses in by_attr.items():
            locked_writes = [a for a in accesses if a.write and a.held]
            if not locked_writes:
                continue
            guard = set(locked_writes[0].held)
            for access in locked_writes[1:]:
                guard &= set(access.held)
            if guard:
                guards[attr] = tuple(sorted(guard))
        return guards

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "locks": sorted(self.locks),
            "guarded": {
                attr: list(guard) for attr, guard in sorted(self.guarded_attrs().items())
            },
        }


class _MethodScanner:
    """Walks one method body, tracking the stack of held lock attributes."""

    def __init__(self, model: LockModel, method: str, path: str,
                 violations: List[LintViolation], sleep_aliases: Set[str]) -> None:
        self.model = model
        self.method = method
        self.path = path
        self.violations = violations
        self.sleep_aliases = sleep_aliases
        self.held: List[str] = []

    # -- statement dispatch -------------------------------------------
    def scan(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scope: locking context unknowable statically
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._scan_with(stmt)
            return
        if self._track_manual(stmt):
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_target(target, stmt)
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.target is not None:
                self._record_target(stmt.target, stmt)
            if getattr(stmt, "value", None) is not None:
                self._scan_expr(stmt.value)
            if isinstance(stmt, ast.AugAssign):
                # ``self.x += 1`` also reads x, but the write already
                # records the access; the read adds nothing.
                pass
            return
        # Generic: scan child expressions, recurse into child statements.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child)
            elif isinstance(child, ast.expr):
                self._scan_expr(child)
            elif isinstance(child, (ast.excepthandler,)):
                self.scan(child.body)
            elif isinstance(child, ast.withitem):  # pragma: no cover — handled above
                self._scan_expr(child.context_expr)

    def _scan_with(self, stmt) -> None:
        entered: List[str] = []
        for item in stmt.items:
            lock_attr = self._lock_attr_of(item.context_expr)
            if lock_attr is not None:
                for outer in self.held:
                    pair = (outer, lock_attr)
                    self.model.order_pairs.setdefault(
                        pair, (item.context_expr.lineno, item.context_expr.col_offset)
                    )
                self.held.append(lock_attr)
                entered.append(lock_attr)
            else:
                self._scan_expr(item.context_expr)
        self.scan(stmt.body)
        for _ in entered:
            self.held.pop()

    def _lock_attr_of(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and attr in self.model.locks:
                return attr
        return None

    def _track_manual(self, stmt: ast.stmt) -> bool:
        """Model ``self._lock.acquire()`` / ``.release()`` statements.

        Statements between the two run with the lock held, so LOCK001
        agrees with the manual pattern (LOCK004 separately polices the
        missing try/finally).  Returns True when the statement was a
        bare acquire/release and needs no further scanning.
        """
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return False
        func = stmt.value.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("acquire", "release")):
            return False
        lock_attr = self._lock_attr_of(func.value)
        if lock_attr is None:
            return False
        if func.attr == "acquire":
            for outer in self.held:
                self.model.order_pairs.setdefault(
                    (outer, lock_attr), (stmt.lineno, stmt.col_offset)
                )
            self.held.append(lock_attr)
        elif lock_attr in self.held:
            # Remove the innermost matching entry (mirrors release order).
            for i in range(len(self.held) - 1, -1, -1):
                if self.held[i] == lock_attr:
                    del self.held[i]
                    break
        return True

    # -- accesses ------------------------------------------------------
    def _record(self, attr: str, write: bool, node: ast.AST) -> None:
        if attr in self.model.locks:
            return
        self.model.accesses.append(
            _Access(
                attr=attr,
                write=write,
                held=tuple(self.held),
                line=node.lineno,
                col=node.col_offset,
                method=self.method,
            )
        )

    def _record_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, stmt)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, True, target)
        else:
            # e.g. ``local[k] = v`` — still scan for reads inside.
            self._scan_expr(target)

    def _scan_expr(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # deferred body: its locking context is the caller's
            if isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    self._record(node.attr, False, node)
            stack.extend(ast.iter_child_nodes(node))

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        # Mutating container method on a self attribute → write access.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._record(attr, True, node)
        if self.held:
            self._check_blocking(node)

    # -- LOCK003 -------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            LintViolation(rule, self.path, node.lineno, node.col_offset, message)
        )

    def _has_timeout(self, node: ast.Call) -> bool:
        return bool(node.args) or any(kw.arg == "timeout" for kw in node.keywords)

    def _check_blocking(self, node: ast.Call) -> None:
        held = ", ".join(repr(name) for name in self.held)
        chain = _attr_chain(node.func)
        if chain and chain[0] in _BLOCKING_ROOTS:
            self._flag(
                "LOCK003", node,
                f"{'.'.join(chain)}() may block while holding {held}",
            )
            return
        if chain == ["time", "sleep"] or (
            len(chain) == 1 and chain[0] in self.sleep_aliases
        ):
            self._flag("LOCK003", node, f"sleep while holding {held}")
            return
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self._flag("LOCK003", node, f"file open() while holding {held}")
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method in _BLOCKING_METHODS:
            self._flag(
                "LOCK003", node,
                f".{method}() I/O while holding {held}",
            )
        elif method in _TIMEOUT_METHODS and not self._has_timeout(node):
            self._flag(
                "LOCK003", node,
                f".{method}() without a timeout while holding {held}",
            )
        elif method == "join" and not node.args and not node.keywords:
            self._flag(
                "LOCK003", node,
                f".join() without a timeout while holding {held}",
            )


class _ClassCollector:
    """Builds the :class:`LockModel` of one class and scans its methods."""

    def __init__(self, node: ast.ClassDef, path: str,
                 violations: List[LintViolation], sleep_aliases: Set[str]) -> None:
        self.node = node
        self.path = path
        self.violations = violations
        self.sleep_aliases = sleep_aliases
        self.model = LockModel(
            name=node.name, line=node.lineno, locks=set(), accesses=[], order_pairs={}
        )

    def run(self) -> Optional[LockModel]:
        self._find_locks()
        if not self.model.locks:
            return None
        for item in self.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__" or item.name.endswith("_locked"):
                # Construction is single-threaded; ``*_locked`` helpers
                # run with the guard already held by their caller.
                continue
            scanner = _MethodScanner(
                self.model, item.name, self.path, self.violations, self.sleep_aliases
            )
            scanner.scan(item.body)
        self._check_lock001()
        self._check_lock002()
        return self.model

    def _find_locks(self) -> None:
        init_params: Set[str] = set()
        for item in self.node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                init_params = {
                    arg.arg
                    for arg in item.args.args + item.args.kwonlyargs
                    if arg.arg == "lock" or arg.arg.endswith("_lock")
                }
        for node in ast.walk(self.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None or not isinstance(target, ast.Attribute):
                    continue
                if self._is_lock_value(node.value, init_params):
                    self.model.locks.add(attr)

    def _is_lock_value(self, value: ast.expr, init_params: Set[str]) -> bool:
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain and (
                chain[-1] in _LOCK_CONSTRUCTORS or chain[-1] in _LOCK_FACTORIES
            ):
                return True
        if isinstance(value, ast.Name) and value.id in init_params:
            # ``self._lock = lock`` with a lock-named __init__ parameter
            # (the metrics children share their family's lock this way).
            return True
        return False

    def _check_lock001(self) -> None:
        guards = self.model.guarded_attrs()
        for access in self.model.accesses:
            guard = guards.get(access.attr)
            if guard is None:
                continue
            if not set(guard) <= set(access.held):
                verb = "written" if access.write else "read"
                locks = " + ".join(repr(g) for g in guard)
                self.violations.append(
                    LintViolation(
                        "LOCK001",
                        self.path,
                        access.line,
                        access.col,
                        f"{self.model.name}.{access.attr} is guarded by {locks} "
                        f"but {verb} here without it (in {access.method})",
                    )
                )

    def _check_lock002(self) -> None:
        flagged = set()
        for (outer, inner), where in sorted(self.model.order_pairs.items()):
            reverse = (inner, outer)
            if reverse in self.model.order_pairs and (outer, inner) not in flagged:
                flagged.add((outer, inner))
                flagged.add(reverse)
                other = self.model.order_pairs[reverse]
                for pair, loc in (((outer, inner), where), (reverse, other)):
                    self.violations.append(
                        LintViolation(
                            "LOCK002",
                            self.path,
                            loc[0],
                            loc[1],
                            f"{self.model.name} acquires {pair[1]!r} while "
                            f"holding {pair[0]!r} here, but the opposite order "
                            f"exists at line {other[0] if pair == (outer, inner) else where[0]}"
                            " — ABBA deadlock risk",
                        )
                    )


class _ManualAcquireChecker(ast.NodeVisitor):
    """LOCK004: flag ``<lock>.acquire()`` not released in a ``finally``.

    Runs module-wide (manual acquisition is a smell anywhere), with a
    parent map so each candidate call can climb to its enclosing
    ``try`` and look for a matching ``.release()`` in the ``finally``.
    """

    def __init__(self, tree: ast.Module, path: str,
                 lock_attrs: Set[str], violations: List[LintViolation]) -> None:
        self.path = path
        self.lock_attrs = lock_attrs
        self.violations = violations
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            if self._is_lockish(func.value) and not self._released_in_finally(node, func.value):
                target = ".".join(_attr_chain(func.value)) or "<lock>"
                self.violations.append(
                    LintViolation(
                        "LOCK004",
                        self.path,
                        node.lineno,
                        node.col_offset,
                        f"manual {target}.acquire() without a try/finally "
                        f"{target}.release(); prefer 'with {target}:'",
                    )
                )
        self.generic_visit(node)

    def _is_lockish(self, base: ast.expr) -> bool:
        attr = _self_attr(base)
        if attr is not None and attr in self.lock_attrs:
            return True
        chain = _attr_chain(base)
        last = chain[-1].lower() if chain else ""
        return any(mark in last for mark in _LOCKISH)

    def _released_in_finally(self, node: ast.AST, base: ast.expr) -> bool:
        wanted = _attr_chain(base)
        # Case 1: the acquire sits inside a try whose finally releases.
        current = node
        while current in self.parents:
            parent = self.parents[current]
            if isinstance(parent, ast.Try) and self._finally_releases(parent, wanted):
                return True
            current = parent
        # Case 2: the canonical ``acquire(); try: ... finally: release()``
        # — the acquire is the *sibling* immediately before the try.
        stmt: ast.AST = node
        while stmt in self.parents and not isinstance(stmt, ast.stmt):
            stmt = self.parents[stmt]
        sibling = self._next_sibling(stmt)
        return isinstance(sibling, ast.Try) and self._finally_releases(sibling, wanted)

    def _finally_releases(self, try_stmt: ast.Try, wanted: List[str]) -> bool:
        for final_stmt in try_stmt.finalbody:
            for call in ast.walk(final_stmt):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "release"
                    and _attr_chain(call.func.value) == wanted
                ):
                    return True
        return False

    def _next_sibling(self, stmt: ast.AST) -> Optional[ast.AST]:
        parent = self.parents.get(stmt)
        if parent is None:
            return None
        for _name, value in ast.iter_fields(parent):
            if isinstance(value, list) and stmt in value:
                index = value.index(stmt)
                if index + 1 < len(value):
                    return value[index + 1]
        return None


def _collect_sleep_aliases(tree: ast.Module) -> Set[str]:
    """Names bound to ``time.sleep`` via ``from time import sleep [as s]``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    aliases.add(alias.asname or "sleep")
    return aliases


def build_lock_models(tree: ast.Module, path: str = "<string>") -> Dict[str, LockModel]:
    """The per-class lock models of one module (classes with locks only)."""
    models: Dict[str, LockModel] = {}
    sleep_aliases = _collect_sleep_aliases(tree)
    scratch: List[LintViolation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            model = _ClassCollector(node, path, scratch, sleep_aliases).run()
            if model is not None:
                models[node.name] = model
    return models


def collect_lock_violations(tree: ast.Module, path: str) -> List[LintViolation]:
    """Run LOCK001–LOCK004 over one parsed module."""
    violations: List[LintViolation] = []
    sleep_aliases = _collect_sleep_aliases(tree)
    lock_attrs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            model = _ClassCollector(node, path, violations, sleep_aliases).run()
            if model is not None:
                lock_attrs |= model.locks
    _ManualAcquireChecker(tree, path, lock_attrs, violations).visit(tree)
    return violations
