"""Traced lock wrappers: the runtime substrate of the concurrency suite.

Every lock in :mod:`repro.serve` and :mod:`repro.obs` is constructed
through :func:`make_lock` / :func:`make_rlock`.  The factory makes a
**construction-time** choice:

* tracing disabled (the default) — a plain :class:`threading.Lock` /
  :class:`threading.RLock` is returned.  The serving hot path pays one
  extra function call at *construction*, never per acquire, so the
  instrumentation is zero-overhead when off.
* tracing enabled (:func:`enable_lock_tracing`, the ``--dynamic``
  analyze pass, or the ``REPRO_RACE_CHECK=1`` pytest fixture) — a
  :class:`TracedLock` / :class:`TracedRLock` is returned.

A traced lock maintains, on top of the real lock:

* **per-thread locksets** (:func:`current_lockset`) — the Eraser-style
  race detector (:mod:`repro.analysis.concurrency.races`) intersects
  these to find fields no common lock protects;
* **wait/hold statistics** (:class:`LockStats`) plus an optional live
  histogram hook (:func:`set_lock_metrics`) exporting
  ``repro_lock_wait_seconds`` / ``repro_lock_hold_seconds`` through
  :mod:`repro.obs.metrics`;
* **a wait-for graph** — a blocked acquire parks in bounded time slices
  and sweeps the graph between slices; a stable thread→lock→owner cycle
  raises :class:`DeadlockError` naming every edge, so an ABBA deadlock
  terminates the test instead of hanging it.  The background watchdog
  (:mod:`repro.analysis.concurrency.watchdog`) sweeps the same graph.

This module is deliberately stdlib-only: :mod:`repro.obs` imports it at
module level, so it must not import anything from :mod:`repro`.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "DeadlockError",
    "LockStats",
    "TracedLock",
    "TracedRLock",
    "clear_tracing_state",
    "current_lock_names",
    "current_lockset",
    "disable_lock_tracing",
    "enable_lock_tracing",
    "find_deadlock",
    "lock_stats_snapshot",
    "lock_tracing",
    "make_lock",
    "make_rlock",
    "publish_lock_metrics",
    "recorded_deadlocks",
    "set_lock_metrics",
    "traced_locks",
    "tracing_enabled",
    "waiting_threads",
]

#: Seconds a blocked acquire parks before sweeping the wait-for graph.
DETECT_SLICE = 0.05


class DeadlockError(RuntimeError):
    """A blocked acquire found itself on a wait-for cycle.

    ``cycle`` is the list of ``(thread_name, lock_name)`` edges: each
    thread is waiting for the named lock, whose owner is the next
    thread on the cycle (the last edge's owner is the first thread).
    """

    def __init__(self, cycle: List[Tuple[str, str]]) -> None:
        chain = " -> ".join(
            f"{thread!r} waits on {lock!r}" for thread, lock in cycle
        )
        super().__init__(f"deadlock detected: {chain} -> back to {cycle[0][0]!r}")
        self.cycle = cycle


class LockStats:
    """Accumulated wait/hold observations of one traced lock."""

    __slots__ = (
        "acquisitions",
        "contended",
        "wait_total",
        "wait_max",
        "hold_total",
        "hold_max",
    )

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended = 0
        self.wait_total = 0.0
        self.wait_max = 0.0
        self.hold_total = 0.0
        self.hold_max = 0.0

    def record_wait(self, seconds: float) -> None:
        self.acquisitions += 1
        self.wait_total += seconds
        if seconds > self.wait_max:
            self.wait_max = seconds

    def record_hold(self, seconds: float) -> None:
        self.hold_total += seconds
        if seconds > self.hold_max:
            self.hold_max = seconds

    def to_dict(self) -> Dict[str, float]:
        return {
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "wait_total": self.wait_total,
            "wait_max": self.wait_max,
            "hold_total": self.hold_total,
            "hold_max": self.hold_max,
        }


class _TracingState:
    """Process-wide instrumentation state (one instance, module-private)."""

    def __init__(self) -> None:
        self.enabled = False
        #: Guards ``waiting`` and ``deadlocks``; a plain lock on purpose —
        #: tracing its own bookkeeping would recurse.
        self.guard = threading.Lock()
        #: thread ident -> (traced lock it is blocked on, thread name).
        self.waiting: Dict[int, Tuple["TracedLock", str]] = {}
        #: Every deadlock cycle ever detected (list of edge lists).
        self.deadlocks: List[List[Tuple[str, str]]] = []
        #: Live traced locks, weakly held so test-created locks can die.
        self.registry: "weakref.WeakSet[TracedLock]" = weakref.WeakSet()
        #: ``(wait_family, hold_family)`` histogram families, or None.
        self.metrics_hook: Optional[Tuple[Any, Any]] = None


_STATE = _TracingState()
_TLS = threading.local()


def _held_stack() -> List["TracedLock"]:
    stack = getattr(_TLS, "held", None)
    if stack is None:
        stack = []
        _TLS.held = stack
    return stack


def _publishing() -> bool:
    return getattr(_TLS, "publishing", False)


@contextmanager
def _publish_guard():
    """Suppress the metrics hook while inside the metrics registry.

    Observing a lock histogram acquires the registry's own (traced)
    lock; without this reentrancy guard that acquire would observe
    itself, forever.
    """
    _TLS.publishing = True
    try:
        yield
    finally:
        _TLS.publishing = False


def tracing_enabled() -> bool:
    """Whether :func:`make_lock` currently returns traced locks."""
    return _STATE.enabled


def enable_lock_tracing() -> None:
    """Make every subsequently constructed lock a traced one."""
    _STATE.enabled = True


def disable_lock_tracing() -> None:
    """Return :func:`make_lock` to plain stdlib locks.

    Locks already constructed keep whatever flavour they were born with.
    """
    _STATE.enabled = False


@contextmanager
def lock_tracing():
    """Enable lock tracing for the duration of the ``with`` block."""
    previous = _STATE.enabled
    _STATE.enabled = True
    try:
        yield
    finally:
        _STATE.enabled = previous


def make_lock(name: str, metrics: bool = True):
    """A mutex for attribute guarding: plain or traced, chosen at construction.

    ``name`` labels the lock in statistics, metrics, and deadlock
    reports; by convention it is the dotted owning-module role, e.g.
    ``"serve.cache"``.  ``metrics=False`` opts the lock out of the live
    wait/hold histograms (used for the metrics registry's *own* lock,
    which the histograms record through).
    """
    if not _STATE.enabled:
        return threading.Lock()
    return TracedLock(name, metrics=metrics)


def make_rlock(name: str, metrics: bool = True):
    """Reentrant variant of :func:`make_lock`."""
    if not _STATE.enabled:
        return threading.RLock()
    return TracedRLock(name, metrics=metrics)


class TracedLock:
    """A :class:`threading.Lock` wrapper that knows who holds it and why.

    Tracks owner thread, per-thread lockset membership, wait/hold
    statistics, and participates in the global wait-for graph.  A
    blocking acquire parks in :data:`DETECT_SLICE` increments and raises
    :class:`DeadlockError` when a stable cycle forms.
    """

    reentrant = False

    def __init__(self, name: str, metrics: bool = True) -> None:
        self.name = name
        self.metrics = metrics
        self.stats = LockStats()
        #: Ident of the holding thread (None when free).  Written only
        #: by the holder; read racily by the deadlock sweep, which
        #: re-verifies any cycle before reporting.
        self.owner: Optional[int] = None
        self.owner_name: str = ""
        self.acquired_at = 0.0
        self._inner = self._make_inner()
        _STATE.registry.add(self)

    def _make_inner(self):
        return threading.Lock()

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- acquire/release ----------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        thread = threading.current_thread()
        started = time.perf_counter()
        got = self._inner.acquire(False)
        if not got:
            if not blocking:
                return False
            self.stats.contended += 1
            with _STATE.guard:
                _STATE.waiting[thread.ident] = (self, thread.name)
            try:
                deadline = None if timeout is None or timeout < 0 else started + timeout
                while not got:
                    slice_s = DETECT_SLICE
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0.0:
                            return False
                        slice_s = min(slice_s, remaining)
                    got = self._inner.acquire(True, slice_s)
                    if not got:
                        cycle = find_deadlock(thread.ident)
                        if cycle is not None:
                            with _STATE.guard:
                                _STATE.deadlocks.append(cycle)
                            raise DeadlockError(cycle)
            finally:
                with _STATE.guard:
                    _STATE.waiting.pop(thread.ident, None)
        self._note_acquired(thread, time.perf_counter() - started)
        return True

    def release(self) -> None:
        held_for = time.perf_counter() - self.acquired_at
        self.owner = None
        self.owner_name = ""
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()
        self.stats.record_hold(held_for)
        self._observe("hold", held_for)

    def _note_acquired(self, thread: threading.Thread, waited: float) -> None:
        self.owner = thread.ident
        self.owner_name = thread.name
        self.acquired_at = time.perf_counter()
        _held_stack().append(self)
        self.stats.record_wait(waited)
        self._observe("wait", waited)

    def _observe(self, kind: str, seconds: float) -> None:
        hook = _STATE.metrics_hook
        if hook is None or not self.metrics or _publishing():
            return
        family = hook[0] if kind == "wait" else hook[1]
        with _publish_guard():
            family.labels(lock=self.name).observe(seconds)

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        state = f"held by {self.owner_name!r}" if self.owner is not None else "free"
        return f"{type(self).__name__}({self.name!r}, {state})"


class TracedRLock(TracedLock):
    """Reentrant traced lock: nested acquires by the owner never block."""

    reentrant = True

    def __init__(self, name: str, metrics: bool = True) -> None:
        self._depth = 0
        super().__init__(name, metrics=metrics)

    def _make_inner(self):
        return threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        thread = threading.current_thread()
        if self.owner == thread.ident:
            # Reentry: the inner RLock cannot block; skip the wait-for
            # bookkeeping and keep the outermost acquisition's timing.
            self._inner.acquire()
            self._depth += 1
            return True
        got = super().acquire(blocking, timeout)
        if got:
            self._depth = 1
        return got

    def release(self) -> None:
        if self._depth > 1:
            self._depth -= 1
            self._inner.release()
            return
        self._depth = 0
        super().release()

    def locked(self) -> bool:
        return self.owner is not None


# -- per-thread lockset introspection ---------------------------------


def current_lockset() -> FrozenSet[int]:
    """The ``id()``s of every traced lock the calling thread holds."""
    return frozenset(id(lock) for lock in _held_stack())


def current_lock_names() -> Tuple[str, ...]:
    """Names of the traced locks the calling thread holds, outermost first."""
    return tuple(lock.name for lock in _held_stack())


def traced_locks() -> List[TracedLock]:
    """A snapshot of every live traced lock."""
    return list(_STATE.registry)


def waiting_threads() -> Dict[int, Tuple[TracedLock, str]]:
    """A snapshot of the wait-for graph's thread→lock edges."""
    with _STATE.guard:
        return dict(_STATE.waiting)


def clear_tracing_state() -> None:
    """Drop recorded deadlocks and forget dead locks (test isolation)."""
    with _STATE.guard:
        _STATE.deadlocks.clear()
        _STATE.waiting.clear()


def recorded_deadlocks() -> List[List[Tuple[str, str]]]:
    """Every deadlock cycle detected since the last clear."""
    with _STATE.guard:
        return [list(cycle) for cycle in _STATE.deadlocks]


# -- deadlock detection -----------------------------------------------


def _trace_cycle(start_ident: int) -> Optional[List[Tuple[str, str]]]:
    """Follow thread→lock→owner edges from ``start_ident``; one pass."""
    waiting = waiting_threads()
    edges: List[Tuple[str, str]] = []
    ident = start_ident
    visited = set()
    while True:
        entry = waiting.get(ident)
        if entry is None:
            return None
        lock, thread_name = entry
        edges.append((thread_name, lock.name))
        owner = lock.owner
        if owner is None:
            return None
        if owner == start_ident:
            return edges
        if owner in visited:
            return None  # a cycle, but not through the caller
        visited.add(owner)
        ident = owner


def find_deadlock(start_ident: int) -> Optional[List[Tuple[str, str]]]:
    """A stable wait-for cycle through ``start_ident``, or ``None``.

    Ownership is read racily, so a candidate cycle is confirmed by a
    second pass after a short pause: a transient coincidence of edges
    dissolves; a true deadlock cannot.
    """
    first = _trace_cycle(start_ident)
    if first is None:
        return None
    time.sleep(0.002)
    second = _trace_cycle(start_ident)
    return first if first == second else None


# -- metrics export ----------------------------------------------------


def set_lock_metrics(registry) -> None:
    """Stream per-acquisition wait/hold into histogram families.

    ``registry`` is duck-typed as :class:`repro.obs.metrics.MetricsRegistry`;
    the families are ``repro_lock_wait_seconds{lock}`` and
    ``repro_lock_hold_seconds{lock}``.  Pass ``None`` to detach.
    """
    if registry is None:
        _STATE.metrics_hook = None
        return
    buckets = (1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.0)
    wait = registry.histogram(
        "repro_lock_wait_seconds",
        "Seconds spent waiting to acquire a traced lock",
        labels=("lock",),
        buckets=buckets,
    )
    hold = registry.histogram(
        "repro_lock_hold_seconds",
        "Seconds a traced lock stayed held per acquisition",
        labels=("lock",),
        buckets=buckets,
    )
    _STATE.metrics_hook = (wait, hold)


def lock_stats_snapshot() -> Dict[str, Dict[str, float]]:
    """Aggregate :class:`LockStats` across live locks, keyed by lock name.

    Several lock instances may share a name (every ``TTLCache`` calls
    its lock ``serve.cache``); their statistics sum.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for lock in traced_locks():
        stats = lock.stats.to_dict()
        into = merged.get(lock.name)
        if into is None:
            stats["locks"] = 1
            merged[lock.name] = stats
        else:
            into["locks"] += 1
            into["acquisitions"] += stats["acquisitions"]
            into["contended"] += stats["contended"]
            into["wait_total"] += stats["wait_total"]
            into["hold_total"] += stats["hold_total"]
            into["wait_max"] = max(into["wait_max"], stats["wait_max"])
            into["hold_max"] = max(into["hold_max"], stats["hold_max"])
    return merged


def publish_lock_metrics(registry) -> Dict[str, Dict[str, float]]:
    """Export the aggregate lock snapshot as ``repro_lock_*`` gauges.

    Gauges (not counters) on purpose: each call publishes the *current*
    aggregate, so repeated publication is idempotent.  Returns the
    snapshot it published.  The wait/hold *distributions* come from
    :func:`set_lock_metrics` instead.
    """
    snapshot = lock_stats_snapshot()
    with _publish_guard():
        acq = registry.gauge(
            "repro_lock_acquisitions", "Total acquisitions per traced lock name",
            labels=("lock",),
        )
        contended = registry.gauge(
            "repro_lock_contended", "Acquisitions that had to wait, per lock name",
            labels=("lock",),
        )
        held_max = registry.gauge(
            "repro_lock_hold_seconds_max", "Longest single hold per lock name",
            labels=("lock",),
        )
        for name, stats in snapshot.items():
            acq.labels(lock=name).set(stats["acquisitions"])
            contended.labels(lock=name).set(stats["contended"])
            held_max.labels(lock=name).set(stats["hold_max"])
        registry.gauge(
            "repro_lock_waiters", "Threads currently blocked on a traced lock"
        ).labels().set(len(waiting_threads()))
        registry.gauge(
            "repro_lock_deadlocks", "Wait-for cycles detected since start"
        ).labels().set(len(recorded_deadlocks()))
    return snapshot
