"""Finite-difference gradient checking for :mod:`repro.nn`.

:func:`gradcheck` compares reverse-mode gradients against central finite
differences of a random linear projection of the outputs — the standard
harness for certifying a hand-written backward.  Everything runs in
float64 (the substrate's native dtype), so the agreement tolerance can be
tight (relative error < 1e-4 by default).

Every shipped layer registers a canonical case via
:func:`register_layer_case`; :func:`run_layer_gradchecks` sweeps them all,
which is what ``python -m repro analyze --gradcheck`` and the test suite
run.  Layers with internal randomness (Dropout) use a replaying generator
so repeated forward evaluations — which finite differencing requires —
see identical draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "GradcheckFailure",
    "GradcheckResult",
    "gradcheck",
    "register_layer_case",
    "run_layer_gradchecks",
    "LAYER_CASES",
]


@dataclass
class GradcheckFailure:
    """One element whose analytic and numeric gradients disagree."""

    tensor: str
    index: int
    analytic: float
    numeric: float
    rel_err: float

    def __str__(self) -> str:
        return (
            f"{self.tensor}[{self.index}]: analytic={self.analytic:.6g} "
            f"numeric={self.numeric:.6g} rel_err={self.rel_err:.3g}"
        )


@dataclass
class GradcheckResult:
    """Outcome of one :func:`gradcheck` run."""

    name: str = ""
    ok: bool = True
    max_rel_err: float = 0.0
    num_checked: int = 0
    failures: List[GradcheckFailure] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "max_rel_err": self.max_rel_err,
            "num_checked": self.num_checked,
            "failures": [str(f) for f in self.failures],
        }


def _as_tuple(value) -> Tuple:
    return value if isinstance(value, tuple) else (value,)


def _scalar_loss(outputs: Tuple, projections: Sequence[np.ndarray]) -> Tensor:
    """Project every output with a fixed random vector and sum — a scalar
    whose gradient exercises all output components."""
    total = None
    for out, proj in zip(outputs, projections):
        term = F.sum(out * Tensor(proj))
        total = term if total is None else total + term
    return total


def gradcheck(
    fn: Callable[..., object],
    inputs: Sequence[Tensor],
    params: Sequence[Tensor] = (),
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-8,
    max_elements: Optional[int] = None,
    seed: int = 0,
    name: str = "",
    raise_on_failure: bool = False,
) -> GradcheckResult:
    """Check reverse-mode gradients of ``fn`` against central differences.

    Parameters
    ----------
    fn:
        Callable mapping ``*inputs`` to a Tensor (or tuple of Tensors).
        It must be deterministic: repeated calls with identical data must
        return identical outputs (freeze any internal RNG).
    inputs:
        Positional tensors for ``fn``; those with ``requires_grad`` are
        checked.
    params:
        Additional tensors to check (module parameters closed over by
        ``fn``).
    eps / rtol / atol:
        Central-difference step and agreement tolerances: an element
        passes when ``|analytic - numeric| <= max(rtol * scale, atol)``
        with ``scale = max(|analytic|, |numeric|, atol/rtol)``.
    max_elements:
        Cap the number of elements perturbed per tensor (evenly strided
        subsample); None checks every element.
    seed:
        Seed of the fixed output-projection vectors.
    raise_on_failure:
        Raise ``AssertionError`` with the failure table instead of
        returning a failed result.
    """
    rng = np.random.default_rng(seed)
    checked: List[Tuple[str, Tensor]] = []
    for index, tensor in enumerate(inputs):
        if isinstance(tensor, Tensor) and tensor.requires_grad:
            checked.append((tensor.name or f"input.{index}", tensor))
    for index, tensor in enumerate(params):
        label = tensor.name or f"param.{index}"
        checked.append((label, tensor))
    if not checked:
        raise ValueError("gradcheck needs at least one requires_grad tensor to check")

    outputs = _as_tuple(fn(*inputs))
    projections = [rng.normal(size=out.shape) for out in outputs]

    # Analytic gradients ------------------------------------------------
    for _, tensor in checked:
        tensor.zero_grad()
    loss = _scalar_loss(outputs, projections)
    loss.backward()
    analytic = {id(t): (np.zeros_like(t.data) if t.grad is None else t.grad.copy())
                for _, t in checked}

    def numeric_loss() -> float:
        outs = _as_tuple(fn(*inputs))
        return float(
            sum(float((out.data * proj).sum()) for out, proj in zip(outs, projections))
        )

    result = GradcheckResult(name=name)
    floor = atol / rtol
    for label, tensor in checked:
        flat = tensor.data.reshape(-1)
        grad_flat = analytic[id(tensor)].reshape(-1)
        size = flat.size
        if max_elements is not None and size > max_elements:
            indices = np.linspace(0, size - 1, max_elements).astype(np.int64)
        else:
            indices = np.arange(size)
        for idx in indices:
            original = flat[idx]
            flat[idx] = original + eps
            plus = numeric_loss()
            flat[idx] = original - eps
            minus = numeric_loss()
            flat[idx] = original
            numeric = (plus - minus) / (2.0 * eps)
            a = float(grad_flat[idx])
            err = abs(a - numeric)
            scale = max(abs(a), abs(numeric), floor)
            rel = err / scale
            result.max_rel_err = max(result.max_rel_err, rel)
            result.num_checked += 1
            if rel > rtol:
                result.failures.append(
                    GradcheckFailure(label, int(idx), a, numeric, rel)
                )
    result.ok = not result.failures
    for _, tensor in checked:
        tensor.zero_grad()
    if raise_on_failure and not result.ok:
        table = "\n".join(str(f) for f in result.failures[:20])
        raise AssertionError(
            f"gradcheck {name or 'case'} failed "
            f"({len(result.failures)}/{result.num_checked} elements):\n{table}"
        )
    return result


# ---------------------------------------------------------------------------
# Per-layer registry
# ---------------------------------------------------------------------------

#: name → builder(rng) returning (fn, inputs, params)
LAYER_CASES: Dict[str, Callable] = {}


def register_layer_case(name: str):
    """Register a canonical gradcheck case for a layer (decorator)."""

    def decorator(builder):
        LAYER_CASES[name] = builder
        return builder

    return decorator


def run_layer_gradchecks(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    max_elements: Optional[int] = None,
    raise_on_failure: bool = False,
) -> Dict[str, GradcheckResult]:
    """Run the registered per-layer gradchecks; returns name → result."""
    selected = list(names) if names is not None else sorted(LAYER_CASES)
    results: Dict[str, GradcheckResult] = {}
    for name in selected:
        if name not in LAYER_CASES:
            raise KeyError(f"unknown gradcheck case {name!r}; have {sorted(LAYER_CASES)}")
        rng = np.random.default_rng(seed)
        fn, inputs, params = LAYER_CASES[name](rng)
        results[name] = gradcheck(
            fn,
            inputs,
            params,
            eps=eps,
            rtol=rtol,
            max_elements=max_elements,
            seed=seed,
            name=name,
            raise_on_failure=raise_on_failure,
        )
    return results


class _ReplayRNG:
    """Generator stand-in whose draws replay identically on every forward.

    Finite differencing evaluates the same function many times; a layer
    with internal randomness (Dropout) must see the same mask each time
    or the numeric gradient measures noise.  Draw ``k`` of every forward
    returns the same array on every call.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._calls = 0

    def reset(self) -> None:
        self._calls = 0

    def random(self, shape) -> np.ndarray:
        value = np.random.default_rng((self._seed, self._calls)).random(shape)
        self._calls += 1
        return value


def _leaf(rng: np.random.Generator, shape, name: str, low: float = -1.0, high: float = 1.0) -> Tensor:
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True, name=name)


@register_layer_case("Linear")
def _case_linear(rng):
    from repro.nn import Linear

    layer = Linear(4, 3, rng)
    x = _leaf(rng, (5, 4), "x")
    return (lambda t: layer(t)), [x], layer.parameters()


@register_layer_case("Embedding")
def _case_embedding(rng):
    from repro.nn import Embedding

    layer = Embedding(7, 3, rng)
    indices = rng.integers(0, 7, size=(4, 5))
    return (lambda: layer(indices)), [], layer.parameters()


@register_layer_case("Dropout")
def _case_dropout(rng):
    from repro.nn import Dropout

    replay = _ReplayRNG(seed=3)
    layer = Dropout(0.4, replay)
    x = _leaf(rng, (6, 5), "x")

    def fn(t):
        replay.reset()
        return layer(t)

    return fn, [x], []


@register_layer_case("Sequential")
def _case_sequential(rng):
    from repro.nn import Linear, Sequential

    layer = Sequential(Linear(4, 6, rng), F.tanh, Linear(6, 2, rng))
    x = _leaf(rng, (3, 4), "x")
    return (lambda t: layer(t)), [x], layer.parameters()


@register_layer_case("MLP")
def _case_mlp(rng):
    from repro.nn import MLP

    layer = MLP([5, 4, 2], rng, activation=F.tanh)
    x = _leaf(rng, (3, 5), "x")
    return (lambda t: layer(t)), [x], layer.parameters()


@register_layer_case("Conv1d")
def _case_conv1d(rng):
    from repro.nn import Conv1d

    layer = Conv1d(3, 4, 2, rng)
    x = _leaf(rng, (2, 6, 3), "x")
    return (lambda t: layer(t)), [x], layer.parameters()


@register_layer_case("TextCNN")
def _case_textcnn(rng):
    from repro.nn import TextCNN

    layer = TextCNN(3, 4, 2, rng)
    x = _leaf(rng, (2, 6, 3), "x")
    return (lambda t: layer(t)), [x], layer.parameters()


@register_layer_case("LSTMCell")
def _case_lstm_cell(rng):
    from repro.nn import LSTMCell

    layer = LSTMCell(3, 4, rng)
    x = _leaf(rng, (2, 3), "x")
    h = _leaf(rng, (2, 4), "h")
    c = _leaf(rng, (2, 4), "c")
    return (lambda *ts: layer(*ts)), [x, h, c], layer.parameters()


@register_layer_case("LSTM")
def _case_lstm(rng):
    from repro.nn import LSTM

    layer = LSTM(3, 4, rng)
    x = _leaf(rng, (2, 5, 3), "x")
    mask = np.ones((2, 5), dtype=bool)
    mask[1, 3:] = False  # exercise the masked carry-forward path
    return (lambda t: layer(t, mask)), [x], layer.parameters()


@register_layer_case("BiLSTM")
def _case_bilstm(rng):
    from repro.nn import BiLSTM

    layer = BiLSTM(3, 2, rng)
    x = _leaf(rng, (2, 4, 3), "x")
    mask = np.ones((2, 4), dtype=bool)
    mask[0, 2:] = False
    return (lambda t: layer(t, mask)), [x], layer.parameters()


@register_layer_case("GRUCell")
def _case_gru_cell(rng):
    from repro.nn import GRUCell

    layer = GRUCell(3, 4, rng)
    x = _leaf(rng, (2, 3), "x")
    h = _leaf(rng, (2, 4), "h")
    return (lambda *ts: layer(*ts)), [x, h], layer.parameters()


@register_layer_case("GRU")
def _case_gru(rng):
    from repro.nn import GRU

    layer = GRU(3, 4, rng)
    x = _leaf(rng, (2, 5, 3), "x")
    mask = np.ones((2, 5), dtype=bool)
    mask[1, 4:] = False
    return (lambda t: layer(t, mask)), [x], layer.parameters()


@register_layer_case("ReviewAttention")
def _case_review_attention(rng):
    from repro.nn import ReviewAttention

    layer = ReviewAttention(
        review_dim=4, own_dim=3, other_dim=3, attention_dim=5, rng=rng
    )
    reviews = _leaf(rng, (2, 3, 4), "reviews")
    own = _leaf(rng, (2, 3), "own")
    others = _leaf(rng, (2, 3, 3), "others")
    mask = np.ones((2, 3), dtype=bool)
    mask[0, 2] = False
    return (lambda *ts: layer(*ts, mask=mask)), [reviews, own, others], layer.parameters()


@register_layer_case("FactorizationMachine")
def _case_fm(rng):
    from repro.nn import FactorizationMachine

    layer = FactorizationMachine(5, 3, rng)
    z = _leaf(rng, (4, 5), "z")
    return (lambda t: layer(t)), [z], layer.parameters()
