"""Autograd-graph validation over a recorded tape.

:func:`validate_graph` walks the tape hanging off a loss tensor (any
tensor produced by a tracer-mode forward pass) and reports structural
problems *before* they corrupt a training run:

* **dead parameters** — parameters with no gradient path to the loss
  (never updated, silently frozen);
* **accidental detachment** — a tensor that was ``.detach()``-ed from a
  gradient-requiring subgraph sits on the path (provenance recorded by
  :meth:`repro.nn.Tensor.detach`);
* **non-finite values / non-finite-prone ops** — NaN/Inf payloads, and
  ``log``/``div``/``sqrt``/``exp`` nodes whose inputs sit in the danger
  zone;
* **dropout active in eval** (and mode inconsistencies generally);
* **in-place mutation** of tape-recorded arrays between forward and
  backward, caught by :class:`~repro.nn.Tensor` version counters plus
  content fingerprints (:class:`GraphSnapshot`), and attributed to the
  mutating ``file:line`` when :func:`track_mutation_sites` is active.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Dropout
from repro.nn.module import Module
from repro.nn.tensor import Tensor, _topological_order, set_mutation_site_tracking

__all__ = [
    "GraphIssue",
    "GraphReport",
    "GraphSnapshot",
    "snapshot_graph",
    "track_mutation_sites",
    "validate_graph",
]

#: Ops whose gradient (or value) explodes near singular inputs, keyed by
#: grad_fn name → (which parent to inspect, predicate description).
_NONFINITE_PRONE = ("log", "div", "sqrt", "power", "exp")


@contextmanager
def track_mutation_sites():
    """Record ``file:line`` for every ``Tensor.data`` rebind in the block.

    Off by default because the capture costs a frame lookup per
    assignment; wrap only analysis/debug passes, not training loops.
    """
    previous = set_mutation_site_tracking(True)
    try:
        yield
    finally:
        set_mutation_site_tracking(previous)


@dataclass
class GraphIssue:
    """One problem found in an autograd graph."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    node: str = ""

    def __str__(self) -> str:
        where = f" [{self.node}]" if self.node else ""
        return f"{self.severity}:{self.code}: {self.message}{where}"

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "node": self.node,
        }


@dataclass
class GraphReport:
    """Outcome of :func:`validate_graph`."""

    issues: List[GraphIssue] = field(default_factory=list)
    num_nodes: int = 0
    num_parameters: int = 0
    reachable_parameters: int = 0

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not any(issue.severity == "error" for issue in self.issues)

    @property
    def errors(self) -> List[GraphIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[GraphIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "num_nodes": self.num_nodes,
            "num_parameters": self.num_parameters,
            "reachable_parameters": self.reachable_parameters,
            "issues": [issue.to_dict() for issue in self.issues],
        }


def _fingerprint(array: np.ndarray) -> Tuple:
    """A cheap content fingerprint catching direct ndarray element writes.

    Full byte hash for small arrays; shape/stats digest for large ones
    (adequate — a mutation that preserves sum, absolute sum, and the
    first/last bytes is vanishingly unlikely in practice).
    """
    if array.size <= 16384:
        return (array.shape, hash(array.tobytes()))
    flat = np.ascontiguousarray(array).reshape(-1)
    with np.errstate(all="ignore"):
        return (
            array.shape,
            float(flat.sum()),
            float(np.abs(flat).sum()),
            hash(flat[:256].tobytes()),
            hash(flat[-256:].tobytes()),
        )


class GraphSnapshot:
    """Version counters + fingerprints of every node reachable from a root.

    Capture right after the forward pass; :meth:`find_mutations` (or
    passing the snapshot to :func:`validate_graph`) then reports any
    tape-recorded array that changed underneath the autograd graph —
    exactly the in-place numpy mutation that makes backward silently
    compute wrong gradients.
    """

    def __init__(self, root: Tensor) -> None:
        self.root = root
        self._records: List[Tuple[Tensor, int, Tuple]] = [
            (node, node.version, _fingerprint(node.data))
            for node in _topological_order(root)
        ]

    def __len__(self) -> int:
        return len(self._records)

    def find_mutations(self) -> List[GraphIssue]:
        """Compare current state against the capture; one issue per node."""
        issues: List[GraphIssue] = []
        for node, version, fingerprint in self._records:
            if node.version != version:
                site = node.mutation_site or (
                    "unknown site — enable repro.analysis.track_mutation_sites()"
                )
                issues.append(
                    GraphIssue(
                        code="mutated-tensor",
                        severity="error",
                        message=(
                            f"tape-recorded data rebound in place after the forward "
                            f"pass (version {version} → {node.version}) at {site}; "
                            f"backward will use the mutated values"
                        ),
                        node=repr(node),
                    )
                )
            elif _fingerprint(node.data) != fingerprint:
                issues.append(
                    GraphIssue(
                        code="mutated-tensor",
                        severity="error",
                        message=(
                            "tape-recorded array contents changed after the forward "
                            "pass (direct ndarray element write, no version bump); "
                            "backward will use the mutated values"
                        ),
                        node=repr(node),
                    )
                )
        return issues


def snapshot_graph(root: Tensor) -> GraphSnapshot:
    """Capture versions/fingerprints of the tape reachable from ``root``."""
    return GraphSnapshot(root)


def _named_parameters(model, parameters) -> List[Tuple[str, Tensor]]:
    if model is not None:
        return list(model.named_parameters())
    if parameters is None:
        return []
    named = []
    for index, param in enumerate(parameters):
        label = param.name or f"param.{index}"
        named.append((label, param))
    return named


def validate_graph(
    loss: Tensor,
    model: Optional[Module] = None,
    parameters: Optional[Sequence[Tensor]] = None,
    snapshot: Optional[GraphSnapshot] = None,
    expect_training: Optional[bool] = None,
) -> GraphReport:
    """Validate the autograd tape hanging off ``loss``.

    Parameters
    ----------
    loss:
        The tensor a backward pass would start from (typically the
        scalar training loss of a tracer-mode forward).
    model:
        When given, its named parameters are checked for gradient paths
        and its :class:`~repro.nn.layers.Dropout` submodules for mode
        consistency.
    parameters:
        Alternative to ``model``: an explicit parameter list.
    snapshot:
        A :func:`snapshot_graph` capture taken after the forward pass;
        enables in-place-mutation detection.
    expect_training:
        Assert the model's mode: ``False`` flags any active dropout
        (dropout-in-eval), ``True`` flags dropout stuck in eval.
    """
    report = GraphReport()
    order = _topological_order(loss)
    report.num_nodes = len(order)
    in_tape = {id(node) for node in order}

    # Dead parameters / detachment ------------------------------------
    named = _named_parameters(model, parameters)
    report.num_parameters = len(named)
    for name, param in named:
        if id(param) in in_tape:
            report.reachable_parameters += 1
        else:
            report.issues.append(
                GraphIssue(
                    code="dead-parameter",
                    severity="error",
                    message=(
                        f"parameter {name!r} has no gradient path to the loss; "
                        f"it will never be updated"
                    ),
                    node=repr(param),
                )
            )

    for node in order:
        source = node._detached_from
        if source is not None:
            report.issues.append(
                GraphIssue(
                    code="detached-tensor",
                    severity="warning",
                    message=(
                        "a gradient-requiring subgraph was detached upstream of the "
                        "loss; gradients stop here (detach() provenance)"
                    ),
                    node=repr(source),
                )
            )

    # Non-finite payloads and non-finite-prone ops ---------------------
    for node in order:
        data = node.data
        if not np.isfinite(data).all():
            bad = int(np.size(data) - np.isfinite(data).sum())
            report.issues.append(
                GraphIssue(
                    code="nonfinite-value",
                    severity="error",
                    message=f"{bad} non-finite value(s) in the forward tape",
                    node=repr(node),
                )
            )
            continue
        grad_fn = node.grad_fn
        if grad_fn in _NONFINITE_PRONE and node._parents:
            issue = _check_prone(grad_fn, node)
            if issue is not None:
                report.issues.append(issue)

    # Dropout / mode consistency ---------------------------------------
    if model is not None:
        root_training = model.training if expect_training is None else expect_training
        for name, module in model.named_modules():
            label = name or type(module).__name__
            if isinstance(module, Dropout) and module.rate > 0:
                if module.training and not root_training:
                    report.issues.append(
                        GraphIssue(
                            code="dropout-in-eval",
                            severity="error",
                            message=(
                                f"Dropout {label!r} (rate={module.rate}) is active "
                                f"while the model is in eval mode; predictions will "
                                f"be stochastic"
                            ),
                        )
                    )
                elif not module.training and root_training:
                    report.issues.append(
                        GraphIssue(
                            code="dropout-stuck-in-eval",
                            severity="warning",
                            message=(
                                f"Dropout {label!r} (rate={module.rate}) is disabled "
                                f"while the model trains; regularization is off"
                            ),
                        )
                    )

    # In-place mutation ------------------------------------------------
    if snapshot is not None:
        report.issues.extend(snapshot.find_mutations())

    return report


def _check_prone(grad_fn: str, node: Tensor) -> Optional[GraphIssue]:
    """Heuristic danger-zone checks for numerically fragile ops."""
    parents = node._parents
    message = None
    if grad_fn in ("log", "sqrt"):
        low = float(parents[0].data.min()) if parents[0].data.size else 1.0
        if low < 1e-12:
            message = f"{grad_fn} input reaches {low:.3g}; gradient blows up near 0"
    elif grad_fn == "div" and len(parents) > 1:
        divisor = parents[1].data
        closest = float(np.abs(divisor).min()) if divisor.size else 1.0
        if closest < 1e-12:
            message = f"divisor magnitude reaches {closest:.3g}; quotient is non-finite-prone"
    elif grad_fn == "power":
        low = float(np.abs(parents[0].data).min()) if parents[0].data.size else 1.0
        if low < 1e-12:
            message = f"power base magnitude reaches {low:.3g}; fractional/negative exponents blow up"
    elif grad_fn == "exp":
        high = float(parents[0].data.max()) if parents[0].data.size else 0.0
        if high > 700.0:
            message = f"exp input reaches {high:.3g}; overflow to inf at ~709"
    if message is None:
        return None
    return GraphIssue(
        code="nonfinite-prone", severity="warning", message=message, node=repr(node)
    )
