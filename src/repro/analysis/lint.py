"""AST-based discipline linter for the repro codebase.

Rules encode the invariants this reproduction depends on — determinism
through injected RNGs, float64 discipline in the substrate, and no
silent mutation of tape-recorded arrays:

========  ==============================================================
Rule      Meaning
========  ==============================================================
RNG001    Legacy global NumPy RNG call (``np.random.<fn>``).  Only
          injected ``np.random.Generator`` instances are allowed; global
          state breaks run-to-run determinism.
RNG002    Stdlib ``random`` module call.  Same reason as RNG001.
TIME001   Wall-clock read (``time.time()`` / ``datetime.now()``).
          Timestamps belong in the observability layer; anywhere else
          they are a hidden nondeterminism source.
DTYPE001  ``np.array``/``np.asarray`` without an explicit ``dtype``
          inside :mod:`repro.nn` — the substrate is float64-only and an
          inferred dtype silently downgrades the tape.
MUT001    Assignment to a ``.data`` attribute (``t.data = …``,
          ``t.data += …``, ``t.data[i] = …``).  Rebinding tape-recorded
          arrays invalidates recorded gradients; only optimizers may do
          it, at sites annotated with a justification.
MUT002    Call-based in-place write to a ``.data`` array: an ``out=``
          argument targeting ``.data`` (``np.subtract(…, out=p.data)``),
          ``np.copyto(p.data, …)``, a ufunc ``.at`` on ``.data``, or a
          mutating ndarray method (``p.data.fill(…)``, ``.sort()``, …).
          These bypass the version-counter bump the assignment setter
          performs, so the graph validator and the planned executors
          cannot see the mutation.  Only the two optimizer update sites
          (which call ``bump_version()`` themselves) are whitelisted;
          :mod:`repro.plan` is exempt — the plan executor is the
          sanctioned engine for such writes and proves them safe.
LOCK001   Shared attribute accessed both under and outside the lock
          that guards it elsewhere in the class (see
          :mod:`repro.analysis.concurrency.lint_locks`).
LOCK002   Two locks acquired in opposite nesting orders within one
          class — the ABBA deadlock shape.
LOCK003   Blocking call (I/O, ``sleep``, ``result``/``wait``/``join``
          without a timeout) while holding a lock.
LOCK004   Manual ``acquire()`` whose ``release()`` is not in a
          ``try/finally``.
========  ==============================================================

The ``LOCK00x`` rules live in
:mod:`repro.analysis.concurrency.lint_locks` and run on every module
except the concurrency package itself (which manipulates locks by
design, mirroring the :mod:`repro.plan` MUT002 exemption).

A violation is suppressed by appending ``# lint: allow[RULE001]`` (one
or more comma-separated rule IDs) to the offending line, which is how
the optimizer update sites are whitelisted.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Union

__all__ = ["RULES", "LintViolation", "LintReport", "lint_source", "lint_paths"]

#: rule ID → one-line description (rendered by ``--lint`` and the docs).
RULES: Dict[str, str] = {
    "RNG001": "legacy global NumPy RNG call; inject an np.random.Generator instead",
    "RNG002": "stdlib random module call; inject an np.random.Generator instead",
    "TIME001": "wall-clock read (time.time/datetime.now); confine timestamps to repro.obs",
    "DTYPE001": "dtype-less np.array/np.asarray in repro.nn; the substrate is float64-only",
    "MUT001": "assignment to a Tensor .data attribute outside a whitelisted optimizer site",
    "MUT002": "call-based in-place write to a .data array outside the plan executor",
}


def _install_lock_rules() -> None:
    """Merge the LOCK001–LOCK004 descriptions into :data:`RULES`.

    Deferred to call time because :mod:`.concurrency.lint_locks` imports
    :class:`LintViolation` from this module.
    """
    from .concurrency.lint_locks import LOCK_RULES

    RULES.update(LOCK_RULES)

#: ndarray methods that mutate in place — targets for MUT002 when
#: invoked directly on a ``.data`` attribute.
_MUTATING_ARRAY_METHODS = {
    "fill",
    "sort",
    "partition",
    "put",
    "itemset",
    "setfield",
    "resize",
    "byteswap",
}

#: np.random attributes that construct the *new-style* API and are fine.
_GENERATOR_API = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
}

_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")


@dataclass
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Outcome of :func:`lint_paths` / :func:`lint_source`."""

    violations: List[LintViolation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
        }


def _attribute_chain(node: ast.AST) -> List[str]:
    """``np.random.rand`` → ["np", "random", "rand"]; [] when not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, in_nn: bool, in_plan: bool = False) -> None:
        self.path = path
        self.in_nn = in_nn
        self.in_plan = in_plan
        self.violations: List[LintViolation] = []
        self.numpy_aliases: Set[str] = {"np", "numpy"}
        self.imports_stdlib_random = False

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            LintViolation(rule, self.path, node.lineno, node.col_offset, message)
        )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if alias.name == "random":
                self.imports_stdlib_random = True
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            names = ", ".join(alias.name for alias in node.names)
            self._flag("RNG002", node, f"imports from stdlib random ({names})")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if len(chain) >= 3 and chain[0] in self.numpy_aliases and chain[1] == "random":
            if chain[2] not in _GENERATOR_API:
                self._flag(
                    "RNG001",
                    node,
                    f"call to {'.'.join(chain)} uses the global NumPy RNG",
                )
        elif (
            len(chain) == 2
            and chain[0] == "random"
            and self.imports_stdlib_random
        ):
            self._flag("RNG002", node, f"call to {'.'.join(chain)} uses stdlib random")
        elif len(chain) >= 2 and chain[-2:] == ["time", "time"]:
            self._flag("TIME001", node, "time.time() reads the wall clock")
        elif len(chain) >= 2 and chain[-1] in ("now", "utcnow") and "datetime" in chain[:-1]:
            self._flag("TIME001", node, f"datetime.{chain[-1]}() reads the wall clock")
        elif (
            self.in_nn
            and len(chain) == 2
            and chain[0] in self.numpy_aliases
            and chain[1] in ("array", "asarray", "asanyarray")
            and not any(kw.arg == "dtype" for kw in node.keywords)
            and len(node.args) < 2  # positional dtype counts as explicit
        ):
            self._flag(
                "DTYPE001",
                node,
                f"{'.'.join(chain)} without an explicit dtype in repro.nn",
            )
        if not self.in_plan:
            self._check_call_mutation(node, chain)
        self.generic_visit(node)

    def _check_call_mutation(self, node: ast.Call, chain: List[str]) -> None:
        """MUT002: call-based in-place writes to ``.data`` arrays."""
        for kw in node.keywords:
            if kw.arg == "out" and self._out_hits_data(kw.value):
                self._flag(
                    "MUT002",
                    node,
                    "out= argument writes into a .data array in place",
                )
                return
        func = node.func
        if (
            len(chain) == 2
            and chain[0] in self.numpy_aliases
            and chain[1] in ("copyto", "place", "putmask", "put")
            and node.args
            and self._is_data_target(node.args[0])
        ):
            self._flag("MUT002", node, f"np.{chain[1]} writes into a .data array")
            return
        if isinstance(func, ast.Attribute):
            if (
                func.attr == "at"
                and node.args
                and self._is_data_target(node.args[0])
            ):
                self._flag("MUT002", node, "ufunc .at scatters into a .data array")
            elif func.attr in _MUTATING_ARRAY_METHODS and self._is_data_target(
                func.value
            ):
                self._flag(
                    "MUT002",
                    node,
                    f".data.{func.attr}() mutates a tape-recorded array",
                )

    def _out_hits_data(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Tuple):
            return any(self._is_data_target(elt) for elt in value.elts)
        return self._is_data_target(value)

    # -- .data mutation ------------------------------------------------
    def _is_data_target(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        if isinstance(target, ast.Subscript):
            return self._is_data_target(target.value)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if any(self._is_data_target(t) for t in node.targets):
            self._flag("MUT001", node, "assigns to a .data attribute")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._is_data_target(node.target):
            self._flag("MUT001", node, "augmented assignment to a .data attribute")
        self.generic_visit(node)


def _allowed_rules(line: str) -> Set[str]:
    match = _PRAGMA.search(line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group(1).split(",") if rule.strip()}


def lint_source(source: str, path: str = "<string>") -> List[LintViolation]:
    """Lint one module's source text; returns pragma-filtered violations."""
    parts = Path(path).parts
    in_nn = "nn" in parts
    in_plan = "plan" in parts
    in_concurrency = "concurrency" in parts
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                "SYNTAX", path, exc.lineno or 0, exc.offset or 0, f"unparsable: {exc.msg}"
            )
        ]
    visitor = _Visitor(path, in_nn, in_plan)
    visitor.visit(tree)
    if not in_concurrency:
        # Deferred import: lint_locks needs LintViolation from this module.
        # The concurrency package itself is exempt — it is the sanctioned
        # engine for raw lock manipulation, mirroring the plan/MUT002 rule.
        from .concurrency.lint_locks import collect_lock_violations

        _install_lock_rules()
        visitor.violations.extend(collect_lock_violations(tree, path))
    lines = source.splitlines()
    kept = []
    for violation in visitor.violations:
        line = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        if violation.rule not in _allowed_rules(line):
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col))
    return kept


def _iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files.extend(
                p
                for p in sorted(root.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif root.suffix == ".py":
            files.append(root)
        else:
            raise FileNotFoundError(f"lint target {root} is not a .py file or directory")
    return files


def lint_paths(paths: Sequence[Union[str, Path]]) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = LintReport()
    for path in _iter_python_files(paths):
        report.files_checked += 1
        report.violations.extend(lint_source(path.read_text(), str(path)))
    return report
