"""repro — reproduction of "Reliable Recommendation with Review-level
Explanations" (RRRE, ICDE 2021).

Subpackages
-----------
``repro.nn``
    From-scratch autograd + neural-network substrate (numpy).
``repro.text``
    Tokenization, vocabulary, pretrained word vectors.
``repro.data``
    Review data model, platform simulator, dataset presets, loaders.
``repro.core``
    The RRRE model, trainer, and recommendation/explanation pipeline.
``repro.baselines``
    PMF, DeepCoNN, NARRE, DER (rating); ICWSM13, SpEagle+, REV2
    (reliability).
``repro.metrics``
    bRMSE, RMSE, AUC, Average Precision, NDCG@k.
``repro.eval``
    Experiment protocol and one runner per paper table/figure.
``repro.obs``
    Observability: per-layer profiling hooks, timers, structured run
    reports (see ``docs/observability.md``).
``repro.resilience``
    Fault tolerance: atomic checkpoint/resume, divergence rollback,
    deterministic chaos testing (see ``docs/resilience.md``).
``repro.analysis``
    Static analysis: symbolic shape checking, autograd-graph
    validation, per-layer gradient checks, and the repo discipline
    linter (see ``docs/analysis.md``).

Quickstart
----------
>>> from repro.data import load_dataset, train_test_split
>>> from repro.core import RRRETrainer, fast_config
>>> dataset = load_dataset("yelpchi", seed=0, scale=0.3)
>>> train, test = train_test_split(dataset, seed=0)
>>> trainer = RRRETrainer(fast_config(epochs=3)).fit(dataset, train)
>>> metrics = trainer.evaluate(test)
"""

__version__ = "1.0.0"

from . import analysis, baselines, core, data, eval, metrics, nn, obs, resilience, text

__all__ = [
    "analysis",
    "baselines",
    "core",
    "data",
    "eval",
    "metrics",
    "nn",
    "obs",
    "resilience",
    "text",
    "__version__",
]
