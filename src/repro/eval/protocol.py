"""Experimental protocol: seeded multi-run evaluation (paper Sec IV).

The paper reports "the mean values of five experiments" on a 70/30
split.  :func:`run_protocol` regenerates the dataset, re-splits, refits
and re-scores once per seed, then aggregates mean/std per metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.obs.trace import maybe_span

from ..data import ReviewDataset, ReviewSubset, load_dataset, train_test_split


@dataclass
class RunResult:
    """Metrics of one (dataset, model, seed) run."""

    dataset: str
    model: str
    seed: int
    metrics: Dict[str, float]


@dataclass
class AggregateResult:
    """Mean/std over seeds for one (dataset, model)."""

    dataset: str
    model: str
    runs: List[RunResult] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        values = [r.metrics[metric] for r in self.runs if metric in r.metrics]
        if not values:
            raise KeyError(f"metric {metric!r} missing from all runs")
        return float(np.mean(values))

    def std(self, metric: str) -> float:
        values = [r.metrics[metric] for r in self.runs if metric in r.metrics]
        return float(np.std(values)) if values else 0.0

    @property
    def metric_names(self) -> List[str]:
        names: List[str] = []
        for run in self.runs:
            for key in run.metrics:
                if key not in names:
                    names.append(key)
        return names


#: A model evaluator: (dataset, train, test, seed) -> metric dict.
Evaluator = Callable[[ReviewDataset, ReviewSubset, ReviewSubset, int], Dict[str, float]]


def run_protocol(
    dataset_name: str,
    evaluators: Dict[str, Evaluator],
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 1.0,
    train_fraction: float = 0.7,
    verbose: bool = False,
) -> Dict[str, AggregateResult]:
    """Run every evaluator over fresh (dataset, split) draws per seed.

    Returns ``{model_name: AggregateResult}``.  Dataset generation, the
    split, and each model all derive their randomness from the seed, so
    the whole protocol is reproducible.
    """
    results = {
        name: AggregateResult(dataset=dataset_name, model=name) for name in evaluators
    }
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale)
        train, test = train_test_split(dataset, train_fraction=train_fraction, seed=seed)
        for name, evaluator in evaluators.items():
            with maybe_span(
                "eval.protocol", kind="eval", dataset=dataset_name, model=name, seed=seed
            ):
                metrics = evaluator(dataset, train, test, seed)
            results[name].runs.append(
                RunResult(dataset=dataset_name, model=name, seed=seed, metrics=metrics)
            )
            if verbose:
                pretty = " ".join(f"{k}={v:.4f}" for k, v in metrics.items())
                print(f"[{dataset_name} seed={seed}] {name}: {pretty}")
    return results


def split_for(
    dataset_name: str, seed: int = 0, scale: float = 1.0
) -> Tuple[ReviewDataset, ReviewSubset, ReviewSubset]:
    """Convenience: one generated dataset plus its 70/30 split."""
    dataset = load_dataset(dataset_name, seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    return dataset, train, test
