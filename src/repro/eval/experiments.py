"""One entry point per paper artifact (Tables II-VIII, Figures 2-4).

Every ``run_*`` function regenerates one table or figure of the paper on
the simulated datasets and returns an :class:`ExperimentReport` whose
``rendered`` field is the printable artifact and whose ``data`` field
holds the raw numbers (consumed by the test suite and EXPERIMENTS.md).

Scale knobs: all functions accept ``scale`` (dataset size multiplier),
``seeds`` and ``epochs`` so the same code serves quick benchmark runs
and higher-fidelity reproductions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..baselines import (
    DER,
    ICWSM13,
    NARRE,
    PMF,
    REV2,
    DeepCoNN,
    RRRERating,
    RRREReliability,
    SpEaglePlus,
)
from ..core import RRREConfig, RRRETrainer, explain_item, recommend_items
from ..data import DATASET_NAMES, PAPER_STATISTICS, load_dataset, train_test_split
from ..metrics import auc, average_precision, biased_rmse, ndcg_at_k
from .protocol import run_protocol
from .reporting import format_series, format_table


@dataclass
class ExperimentReport:
    """A regenerated paper artifact."""

    experiment: str
    rendered: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


def bench_rrre_config(**overrides) -> RRREConfig:
    """The tuned mid-size RRRE configuration used by the benchmarks.

    Chosen so one fit takes ~10-20 s on a CPU core at ``scale=0.5``
    while keeping the paper's architecture (BiLSTM encoder, fraud
    attention, FM head, joint loss).
    """
    defaults = dict(
        review_dim=48,
        word_dim=20,
        id_dim=12,
        attention_dim=12,
        fm_factors=6,
        s_u=7,
        s_i=10,
        max_len=18,
        epochs=14,
        batch_size=128,
        lr=0.008,
        lambda_weight=0.4,
        dropout=0.1,
        weight_decay=3e-3,
        pretrain_words=True,
        max_vocab=3000,
    )
    defaults.update(overrides)
    return RRREConfig(**defaults)


# ---------------------------------------------------------------------------
# Table II — dataset statistics
# ---------------------------------------------------------------------------


def run_table2(scale: float = 0.5, seed: int = 0) -> ExperimentReport:
    """Statistics of the five simulated datasets next to the paper's."""
    rows = {}
    for name in DATASET_NAMES:
        stats = load_dataset(name, seed=seed, scale=scale).statistics()
        paper = PAPER_STATISTICS[name]
        rows[name] = {
            "reviews": stats["reviews"],
            "fake%": 100.0 * stats["fake_fraction"],
            "items": stats["items"],
            "users": stats["users"],
            "paper fake%": 100.0 * paper["fake_fraction"],
        }
    rendered = format_table(
        "Table II — dataset statistics (simulated vs paper fake share)",
        rows=list(rows),
        columns=["reviews", "fake%", "items", "users", "paper fake%"],
        values=rows,
        precision=1,
    )
    return ExperimentReport("table2", rendered, {"rows": rows})


# ---------------------------------------------------------------------------
# Table III — bRMSE of rating prediction
# ---------------------------------------------------------------------------


def _rating_evaluator(factory: Callable[[int], object]):
    def evaluate(dataset, train, test, seed, _factory=factory):
        model = _factory(seed)
        model.fit(dataset, train)
        predictions = model.predict_subset(test)
        return {"brmse": biased_rmse(predictions, test.ratings, test.labels)}

    return evaluate


def rating_model_factories(epochs: int = 14) -> Dict[str, Callable]:
    """Factories for every Table III column."""
    neural_epochs = max(4, epochs // 2)
    return {
        "RRRE": lambda seed: RRRERating(bench_rrre_config(epochs=epochs, seed=seed)),
        "PMF": lambda seed: PMF(epochs=25, seed=seed),
        "DeepCoNN": lambda seed: DeepCoNN(epochs=neural_epochs, seed=seed),
        "NARRE": lambda seed: NARRE(epochs=neural_epochs, seed=seed),
        "DER": lambda seed: DER(epochs=neural_epochs, seed=seed),
        "RRRE-": lambda seed: RRRERating(
            bench_rrre_config(epochs=epochs, seed=seed), biased=False
        ),
    }


def run_table3(
    datasets: Sequence[str] = DATASET_NAMES,
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.5,
    epochs: int = 14,
    verbose: bool = False,
) -> ExperimentReport:
    """Table III: bRMSE of all rating models across datasets."""
    factories = rating_model_factories(epochs=epochs)
    values: Dict[str, Dict[str, float]] = {name: {} for name in datasets}
    for name in datasets:
        evaluators = {
            model: _rating_evaluator(factory) for model, factory in factories.items()
        }
        aggregates = run_protocol(
            name, evaluators, seeds=seeds, scale=scale, verbose=verbose
        )
        for model, agg in aggregates.items():
            values[name][model] = agg.mean("brmse")
    rendered = format_table(
        "Table III — bRMSE of rating prediction (lower is better, * = best)",
        rows=list(datasets),
        columns=list(factories),
        values=values,
        highlight_best="min",
        best_axis="row",
    )
    return ExperimentReport("table3", rendered, {"brmse": values})


# ---------------------------------------------------------------------------
# Table IV — AUC / AP of reliability prediction
# ---------------------------------------------------------------------------


def _reliability_evaluator(factory: Callable[[int], object]):
    def evaluate(dataset, train, test, seed, _factory=factory):
        model = _factory(seed)
        model.fit(dataset, train)
        scores = model.score_subset(test)
        return {
            "auc": auc(scores, test.labels),
            "ap": average_precision(scores, test.labels),
        }

    return evaluate


def reliability_model_factories(epochs: int = 14) -> Dict[str, Callable]:
    """Factories for every Table IV row."""
    return {
        "ICWSM13": lambda seed: ICWSM13(),
        "SpEagle+": lambda seed: SpEaglePlus(seed=seed),
        "REV2": lambda seed: REV2(),
        "RRRE": lambda seed: RRREReliability(bench_rrre_config(epochs=epochs, seed=seed)),
    }


def run_table4(
    datasets: Sequence[str] = DATASET_NAMES,
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.5,
    epochs: int = 14,
    verbose: bool = False,
) -> ExperimentReport:
    """Table IV: AUC and Average Precision of reliability scoring."""
    factories = reliability_model_factories(epochs=epochs)
    auc_values: Dict[str, Dict[str, float]] = {m: {} for m in factories}
    ap_values: Dict[str, Dict[str, float]] = {m: {} for m in factories}
    for name in datasets:
        evaluators = {
            model: _reliability_evaluator(factory)
            for model, factory in factories.items()
        }
        aggregates = run_protocol(
            name, evaluators, seeds=seeds, scale=scale, verbose=verbose
        )
        for model, agg in aggregates.items():
            auc_values[model][name] = agg.mean("auc")
            ap_values[model][name] = agg.mean("ap")
    rendered = "\n\n".join(
        [
            format_table(
                "Table IV (left) — AUC of reliability prediction (* = best)",
                rows=list(factories),
                columns=list(datasets),
                values=auc_values,
                highlight_best="max",
            ),
            format_table(
                "Table IV (right) — Average Precision of reliability prediction (* = best)",
                rows=list(factories),
                columns=list(datasets),
                values=ap_values,
                highlight_best="max",
            ),
        ]
    )
    return ExperimentReport("table4", rendered, {"auc": auc_values, "ap": ap_values})


# ---------------------------------------------------------------------------
# Tables V & VI — NDCG@k
# ---------------------------------------------------------------------------


def run_ndcg_table(
    dataset_name: str,
    ks: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    seeds: Sequence[int] = (0, 1, 2),
    scale: float = 0.5,
    epochs: int = 14,
) -> ExperimentReport:
    """NDCG@k of reliability ranking (Table V: yelpchi; Table VI: cds).

    The paper sweeps k = 100..1000 over test pools of 15k-180k reviews;
    at simulator scale the pool is a few hundred, so k is swept over the
    same *relative* depth (≈2-15 % of the ranking).
    """
    factories = reliability_model_factories(epochs=epochs)
    values: Dict[str, Dict[str, float]] = {str(k): {} for k in ks}
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale)
        train, test = train_test_split(dataset, seed=seed)
        for model_name, factory in factories.items():
            model = factory(seed)
            model.fit(dataset, train)
            scores = model.score_subset(test)
            for k in ks:
                key = str(k)
                values[key].setdefault(model_name, 0.0)
                values[key][model_name] += ndcg_at_k(scores, test.labels, k) / len(seeds)
    table_no = "V" if dataset_name == "yelpchi" else "VI"
    rendered = format_table(
        f"Table {table_no} — NDCG@k of reliability ranking on {dataset_name} (* = best)",
        rows=[str(k) for k in ks],
        columns=list(factories),
        values=values,
        highlight_best="max",
        best_axis="row",
    )
    return ExperimentReport(f"table{table_no.lower()}", rendered, {"ndcg": values})


def run_table5(**kwargs) -> ExperimentReport:
    """Table V: NDCG@k on YelpChi."""
    return run_ndcg_table("yelpchi", **kwargs)


def run_table6(**kwargs) -> ExperimentReport:
    """Table VI: NDCG@k on CDs."""
    return run_ndcg_table("cds", **kwargs)


# ---------------------------------------------------------------------------
# Tables VII & VIII — case study
# ---------------------------------------------------------------------------


def _fit_case_study_trainer(
    scale: float, seed: int, epochs: int
) -> RRRETrainer:
    dataset = load_dataset("yelpchi", seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    trainer = RRRETrainer(bench_rrre_config(epochs=epochs, seed=seed))
    trainer.fit(dataset, train)
    return trainer


def run_table7(
    scale: float = 0.5, seed: int = 0, epochs: int = 14, top_k: int = 3
) -> ExperimentReport:
    """Table VII: recommend an item with rating→reliability re-ranking."""
    trainer = _fit_case_study_trainer(scale, seed, epochs)
    dataset = trainer.dataset
    # Pick the most active user who still has >= top_k unseen items, so
    # the candidate pool is as rich as the paper's example.
    degrees = dataset.user_degrees()
    user_id = 0
    for candidate in np.argsort(-degrees):
        seen = {dataset.item_ids[idx] for idx in dataset.reviews_by_user[int(candidate)]}
        if dataset.num_items - len(seen) >= top_k:
            user_id = int(candidate)
            break
    recs = recommend_items(trainer, user_id, top_k=top_k)

    lines = [
        "Table VII — case study: recommendation results",
        f"user {dataset.user_names[user_id]!r} — top-{top_k} candidates by rating,",
        "picked by reliability:",
        "",
        f"{'item':24s} {'pred rating':>12s} {'pred reliability':>18s}",
        "-" * 58,
    ]
    for rec in recs:
        lines.append(
            f"{rec.item_name:24s} {rec.predicted_rating:12.3f} "
            f"{rec.predicted_reliability:18.3f}"
        )
    if recs:
        lines.append("")
        lines.append(f"recommended: {recs[0].item_name} (highest reliability in pool)")
    return ExperimentReport(
        "table7",
        "\n".join(lines),
        {"user_id": user_id, "recommendations": recs},
    )


def run_table8(
    scale: float = 0.5, seed: int = 0, epochs: int = 14, top_k: int = 5
) -> ExperimentReport:
    """Table VIII: reliable explanations for a recommended item."""
    trainer = _fit_case_study_trainer(scale, seed, epochs)
    dataset = trainer.dataset
    item_id = int(np.argmax(dataset.item_degrees()))
    explanations = explain_item(trainer, item_id, top_k=top_k, min_reliability=0.0)

    lines = [
        "Table VIII — case study: reliable explanations",
        f"item {dataset.item_names[item_id]!r} — candidate reviews sorted by rating,",
        "re-ranked by reliability (low-reliability candidates are filtered):",
        "",
    ]
    for exp in explanations:
        lines.append(
            f"- {exp.user_name}: pred rating {exp.predicted_rating:.3f} "
            f"(real {exp.actual_rating:.0f}), pred reliability "
            f"{exp.predicted_reliability:.3f} (real {exp.actual_label})"
        )
        lines.append(f"    \"{exp.text[:110]}\"")
    return ExperimentReport(
        "table8",
        "\n".join(lines),
        {"item_id": item_id, "explanations": explanations},
    )


# ---------------------------------------------------------------------------
# Figure 2 — review embedding size k
# ---------------------------------------------------------------------------


def run_fig2(
    k_values: Sequence[int] = (8, 16, 32, 64, 128),
    scale: float = 0.5,
    seed: int = 0,
    epochs: int = 10,
) -> ExperimentReport:
    """Fig. 2: training curves (bRMSE and AUC per epoch) per embedding size."""
    dataset = load_dataset("yelpchi", seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    brmse_curves: Dict[str, List[float]] = {}
    auc_curves: Dict[str, List[float]] = {}
    for k in k_values:
        config = bench_rrre_config(review_dim=int(k), epochs=epochs, seed=seed)
        trainer = RRRETrainer(config).fit(dataset, train, test)
        brmse_curves[f"k={k}"] = [r.eval_metrics["brmse"] for r in trainer.history]
        auc_curves[f"k={k}"] = [r.eval_metrics.get("auc", 0.0) for r in trainer.history]
    epochs_axis = list(range(1, epochs + 1))
    rendered = "\n\n".join(
        [
            format_series(
                "Fig. 2 (left) — bRMSE per epoch vs embedding size k",
                "epoch",
                epochs_axis,
                brmse_curves,
            ),
            format_series(
                "Fig. 2 (right) — AUC per epoch vs embedding size k",
                "epoch",
                epochs_axis,
                auc_curves,
            ),
        ]
    )
    return ExperimentReport(
        "fig2", rendered, {"brmse": brmse_curves, "auc": auc_curves}
    )


# ---------------------------------------------------------------------------
# Figures 3 & 4 — input sizes s_u and s_i
# ---------------------------------------------------------------------------


def run_input_size_sweep(
    which: str,
    sizes: Sequence[int],
    fixed: int,
    scale: float = 0.5,
    seed: int = 0,
    epochs: int = 10,
) -> ExperimentReport:
    """Sweep s_u (Fig. 3) or s_i (Fig. 4): final metrics + training time."""
    if which not in ("s_u", "s_i"):
        raise ValueError(f"which must be 's_u' or 's_i', got {which!r}")
    dataset = load_dataset("yelpchi", seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    brmse_list: List[float] = []
    auc_list: List[float] = []
    seconds_list: List[float] = []
    for size in sizes:
        kwargs = {"s_u": int(size), "s_i": fixed} if which == "s_u" else {
            "s_u": fixed,
            "s_i": int(size),
        }
        config = bench_rrre_config(epochs=epochs, seed=seed, **kwargs)
        start = time.perf_counter()
        trainer = RRRETrainer(config).fit(dataset, train)
        seconds = time.perf_counter() - start
        metrics = trainer.evaluate(test)
        brmse_list.append(metrics["brmse"])
        auc_list.append(metrics.get("auc", 0.0))
        seconds_list.append(seconds)
    fig_no = "3" if which == "s_u" else "4"
    rendered = format_series(
        f"Fig. {fig_no} — effect of input size {which} (fixed "
        f"{'s_i' if which == 's_u' else 's_u'}={fixed})",
        which,
        list(sizes),
        {"bRMSE": brmse_list, "AUC": auc_list, "seconds": seconds_list},
    )
    return ExperimentReport(
        f"fig{fig_no}",
        rendered,
        {"sizes": list(sizes), "brmse": brmse_list, "auc": auc_list, "seconds": seconds_list},
    )


def run_fig3(
    sizes: Sequence[int] = (1, 3, 5, 7, 9, 11, 13),
    fixed_s_i: int = 10,
    **kwargs,
) -> ExperimentReport:
    """Fig. 3: user input size s_u sweep (paper: 1..13, s_i fixed)."""
    return run_input_size_sweep("s_u", sizes, fixed_s_i, **kwargs)


def run_fig4(
    sizes: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
    fixed_s_u: int = 7,
    **kwargs,
) -> ExperimentReport:
    """Fig. 4: item input size s_i sweep.

    The paper sweeps 12..132 against a median item degree of 72; the
    simulated yelpchi has a median item degree near 30, so the sweep
    covers the same relative range.
    """
    return run_input_size_sweep("s_i", sizes, fixed_s_u, **kwargs)


# ---------------------------------------------------------------------------
# Ablations beyond the paper
# ---------------------------------------------------------------------------


def run_ablation_encoder(
    encoders: Sequence[str] = ("bilstm", "cnn", "mean"),
    scale: float = 0.5,
    seeds: Sequence[int] = (0, 1),
    epochs: int = 12,
) -> ExperimentReport:
    """Swap the review encoder: BiLSTM (paper) vs CNN vs mean pooling."""
    values: Dict[str, Dict[str, float]] = {}
    for encoder in encoders:
        brmse_sum, auc_sum = 0.0, 0.0
        for seed in seeds:
            dataset = load_dataset("yelpchi", seed=seed, scale=scale)
            train, test = train_test_split(dataset, seed=seed)
            config = bench_rrre_config(encoder=encoder, epochs=epochs, seed=seed)
            trainer = RRRETrainer(config).fit(dataset, train)
            metrics = trainer.evaluate(test)
            brmse_sum += metrics["brmse"]
            auc_sum += metrics.get("auc", 0.0)
        values[encoder] = {
            "brmse": brmse_sum / len(seeds),
            "auc": auc_sum / len(seeds),
        }
    rendered = format_table(
        "Ablation — review encoder (yelpchi)",
        rows=list(encoders),
        columns=["brmse", "auc"],
        values=values,
    )
    return ExperimentReport("ablation_encoder", rendered, {"values": values})


def run_ablation_attention(
    scale: float = 0.5,
    seeds: Sequence[int] = (0, 1),
    epochs: int = 12,
) -> ExperimentReport:
    """Fraud-attention vs uniform mean pooling in UserNet/ItemNet."""
    values: Dict[str, Dict[str, float]] = {}
    for pooling in ("attention", "mean"):
        brmse_sum, auc_sum = 0.0, 0.0
        for seed in seeds:
            dataset = load_dataset("yelpchi", seed=seed, scale=scale)
            train, test = train_test_split(dataset, seed=seed)
            config = bench_rrre_config(pooling=pooling, epochs=epochs, seed=seed)
            trainer = RRRETrainer(config).fit(dataset, train)
            metrics = trainer.evaluate(test)
            brmse_sum += metrics["brmse"]
            auc_sum += metrics.get("auc", 0.0)
        values[pooling] = {
            "brmse": brmse_sum / len(seeds),
            "auc": auc_sum / len(seeds),
        }
    rendered = format_table(
        "Ablation — review pooling (fraud-attention vs mean), yelpchi",
        rows=["attention", "mean"],
        columns=["brmse", "auc"],
        values=values,
    )
    return ExperimentReport("ablation_attention", rendered, {"values": values})


def run_ablation_lambda(
    lambdas: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    scale: float = 0.5,
    seed: int = 0,
    epochs: int = 12,
) -> ExperimentReport:
    """Sweep the joint-loss weight λ of Eq. 15."""
    dataset = load_dataset("yelpchi", seed=seed, scale=scale)
    train, test = train_test_split(dataset, seed=seed)
    brmse_list, auc_list = [], []
    for lam in lambdas:
        config = bench_rrre_config(lambda_weight=float(lam), epochs=epochs, seed=seed)
        trainer = RRRETrainer(config).fit(dataset, train)
        metrics = trainer.evaluate(test)
        brmse_list.append(metrics["brmse"])
        auc_list.append(metrics.get("auc", float("nan")))
    rendered = format_series(
        "Ablation — joint loss weight λ (Eq. 15), yelpchi",
        "lambda",
        list(lambdas),
        {"bRMSE": brmse_list, "AUC": auc_list},
    )
    return ExperimentReport(
        "ablation_lambda",
        rendered,
        {"lambdas": list(lambdas), "brmse": brmse_list, "auc": auc_list},
    )
