"""The paper's reported numbers and measured-vs-paper comparison.

Ground-truth values transcribed from the ICDE 2021 paper (Tables III-VI).
:func:`compare_table` checks *shape* agreement — which model wins, and
how models order — rather than absolute values, since the reproduction
runs on a scaled simulator instead of the authors' corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

#: Table III — bRMSE (rows: datasets, columns: models).
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "yelpchi": {"RRRE": 0.965, "PMF": 1.052, "DeepCoNN": 0.994, "NARRE": 1.002, "DER": 1.112, "RRRE-": 1.041},
    "yelpnyc": {"RRRE": 0.989, "PMF": 1.081, "DeepCoNN": 0.992, "NARRE": 1.030, "DER": 1.048, "RRRE-": 1.058},
    "yelpzip": {"RRRE": 0.983, "PMF": 1.101, "DeepCoNN": 1.092, "NARRE": 1.073, "DER": 1.087, "RRRE-": 1.062},
    "musics": {"RRRE": 1.054, "PMF": 1.194, "DeepCoNN": 1.143, "NARRE": 1.156, "DER": 1.170, "RRRE-": 1.179},
    "cds": {"RRRE": 0.977, "PMF": 1.081, "DeepCoNN": 0.998, "NARRE": 1.060, "DER": 1.088, "RRRE-": 1.098},
}

#: Table IV — AUC (rows: models, columns: datasets).
PAPER_TABLE4_AUC: Dict[str, Dict[str, float]] = {
    "ICWSM13": {"musics": 0.734, "cds": 0.722, "yelpchi": 0.713, "yelpnyc": 0.654, "yelpzip": 0.632},
    "SpEagle+": {"musics": 0.759, "cds": 0.763, "yelpchi": 0.795, "yelpnyc": 0.783, "yelpzip": 0.804},
    "REV2": {"musics": 0.798, "cds": 0.803, "yelpchi": 0.625, "yelpnyc": 0.648, "yelpzip": 0.634},
    "RRRE": {"musics": 0.911, "cds": 0.924, "yelpchi": 0.789, "yelpnyc": 0.791, "yelpzip": 0.806},
}

#: Table IV — Average Precision.
PAPER_TABLE4_AP: Dict[str, Dict[str, float]] = {
    "ICWSM13": {"musics": 0.857, "cds": 0.869, "yelpchi": 0.856, "yelpnyc": 0.843, "yelpzip": 0.895},
    "SpEagle+": {"musics": 0.416, "cds": 0.405, "yelpchi": 0.397, "yelpnyc": 0.348, "yelpzip": 0.425},
    "REV2": {"musics": 0.801, "cds": 0.819, "yelpchi": 0.532, "yelpnyc": 0.503, "yelpzip": 0.612},
    "RRRE": {"musics": 0.965, "cds": 0.977, "yelpchi": 0.956, "yelpnyc": 0.929, "yelpzip": 0.934},
}

#: Table V — NDCG@k on YelpChi (k → model → value).
PAPER_TABLE5: Dict[int, Dict[str, float]] = {
    100: {"ICWSM13": 0.567, "SpEagle+": 0.975, "REV2": 0.432, "RRRE": 0.989},
    200: {"ICWSM13": 0.551, "SpEagle+": 0.962, "REV2": 0.425, "RRRE": 0.986},
    300: {"ICWSM13": 0.546, "SpEagle+": 0.951, "REV2": 0.419, "RRRE": 0.986},
    400: {"ICWSM13": 0.541, "SpEagle+": 0.938, "REV2": 0.406, "RRRE": 0.982},
    500: {"ICWSM13": 0.532, "SpEagle+": 0.924, "REV2": 0.395, "RRRE": 0.979},
    600: {"ICWSM13": 0.535, "SpEagle+": 0.905, "REV2": 0.386, "RRRE": 0.972},
    700: {"ICWSM13": 0.525, "SpEagle+": 0.889, "REV2": 0.389, "RRRE": 0.967},
    800: {"ICWSM13": 0.511, "SpEagle+": 0.865, "REV2": 0.376, "RRRE": 0.959},
    900: {"ICWSM13": 0.486, "SpEagle+": 0.849, "REV2": 0.374, "RRRE": 0.951},
    1000: {"ICWSM13": 0.459, "SpEagle+": 0.835, "REV2": 0.364, "RRRE": 0.940},
}

#: Table VI — NDCG@k on CDs.
PAPER_TABLE6: Dict[int, Dict[str, float]] = {
    100: {"ICWSM13": 0.488, "SpEagle+": 0.921, "REV2": 0.554, "RRRE": 0.998},
    200: {"ICWSM13": 0.465, "SpEagle+": 0.906, "REV2": 0.545, "RRRE": 0.991},
    300: {"ICWSM13": 0.470, "SpEagle+": 0.885, "REV2": 0.542, "RRRE": 0.985},
    400: {"ICWSM13": 0.454, "SpEagle+": 0.884, "REV2": 0.536, "RRRE": 0.974},
    500: {"ICWSM13": 0.438, "SpEagle+": 0.875, "REV2": 0.532, "RRRE": 0.971},
    600: {"ICWSM13": 0.435, "SpEagle+": 0.860, "REV2": 0.524, "RRRE": 0.966},
    700: {"ICWSM13": 0.424, "SpEagle+": 0.858, "REV2": 0.515, "RRRE": 0.956},
    800: {"ICWSM13": 0.417, "SpEagle+": 0.855, "REV2": 0.516, "RRRE": 0.950},
    900: {"ICWSM13": 0.401, "SpEagle+": 0.824, "REV2": 0.494, "RRRE": 0.936},
    1000: {"ICWSM13": 0.392, "SpEagle+": 0.801, "REV2": 0.482, "RRRE": 0.927},
}


@dataclass
class ShapeComparison:
    """Shape agreement between a measured table and the paper's."""

    experiment: str
    winner_matches: Dict[str, bool] = field(default_factory=dict)
    rank_correlations: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def winner_agreement(self) -> float:
        """Fraction of rows whose best model matches the paper's."""
        if not self.winner_matches:
            return 0.0
        return sum(self.winner_matches.values()) / len(self.winner_matches)

    @property
    def mean_rank_correlation(self) -> float:
        """Average Spearman correlation of model orderings."""
        if not self.rank_correlations:
            return 0.0
        return sum(self.rank_correlations.values()) / len(self.rank_correlations)


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two aligned value sequences."""
    import numpy as np

    if len(a) != len(b) or len(a) < 2:
        raise ValueError("need two aligned sequences of length >= 2")
    ra = _ranks(a)
    rb = _ranks(b)
    ra_c = ra - ra.mean()
    rb_c = rb - rb.mean()
    denom = float(np.sqrt((ra_c**2).sum() * (rb_c**2).sum()))
    if denom == 0:
        return 0.0
    return float((ra_c * rb_c).sum() / denom)


def _ranks(values: Sequence[float]):
    """Midranks: tied values share the average of their rank positions."""
    import numpy as np

    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values))
    ranks[order] = np.arange(len(values), dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def compare_table(
    experiment: str,
    measured: Mapping[str, Mapping[str, float]],
    paper: Mapping[str, Mapping[str, float]],
    lower_is_better: bool,
) -> ShapeComparison:
    """Compare measured vs paper values row-by-row.

    Both tables are ``{row: {model: value}}``.  For each row present in
    both, records (a) whether the winning model matches and (b) the
    Spearman correlation of the model ordering.
    """
    result = ShapeComparison(experiment=experiment)
    pick = min if lower_is_better else max
    for row, paper_row in paper.items():
        measured_row = measured.get(row)
        if not measured_row:
            result.notes.append(f"row {row!r} missing from measurements")
            continue
        common = [m for m in paper_row if m in measured_row]
        if len(common) < 2:
            result.notes.append(f"row {row!r} has <2 comparable models")
            continue
        paper_vals = [paper_row[m] for m in common]
        measured_vals = [measured_row[m] for m in common]
        paper_winner = common[paper_vals.index(pick(paper_vals))]
        measured_winner = common[measured_vals.index(pick(measured_vals))]
        result.winner_matches[str(row)] = paper_winner == measured_winner
        result.rank_correlations[str(row)] = spearman(paper_vals, measured_vals)
    return result


def render_comparison(comparison: ShapeComparison) -> str:
    """Human-readable summary of a shape comparison."""
    lines = [
        f"shape check — {comparison.experiment}:",
        f"  winner agreement: {100 * comparison.winner_agreement:.0f}% "
        f"({sum(comparison.winner_matches.values())}/{len(comparison.winner_matches)} rows)",
        f"  mean rank correlation: {comparison.mean_rank_correlation:+.2f}",
    ]
    for row, match in comparison.winner_matches.items():
        rho = comparison.rank_correlations.get(row, float("nan"))
        lines.append(f"    {row}: winner {'✓' if match else '✗'}  ρ={rho:+.2f}")
    lines.extend(f"  note: {note}" for note in comparison.notes)
    return "\n".join(lines)
