"""ASCII rendering of result tables and training-curve series."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .protocol import AggregateResult


def format_table(
    title: str,
    rows: Sequence[str],
    columns: Sequence[str],
    values: Mapping[str, Mapping[str, float]],
    precision: int = 3,
    highlight_best: str = "",
    best_axis: str = "column",
) -> str:
    """Render ``values[row][column]`` as a fixed-width table.

    ``highlight_best`` marks the best value with ``*`` — ``"min"`` for
    error metrics, ``"max"`` for AUC-like metrics — along ``best_axis``
    (``"column"``: best across rows per column; ``"row"``: best across
    columns per row).
    """
    if best_axis not in ("column", "row"):
        raise ValueError(f"best_axis must be 'column' or 'row', got {best_axis!r}")
    col_width = max(12, max((len(c) for c in columns), default=12) + 2)
    row_width = max(10, max((len(r) for r in rows), default=10) + 2)

    best: Dict[str, float] = {}
    if highlight_best in ("min", "max"):
        pick = min if highlight_best == "min" else max
        if best_axis == "column":
            for col in columns:
                col_vals = [
                    values[row][col] for row in rows if col in values.get(row, {})
                ]
                if col_vals:
                    best[col] = pick(col_vals)
        else:
            for row in rows:
                row_vals = [
                    values[row][col] for col in columns if col in values.get(row, {})
                ]
                if row_vals:
                    best[row] = pick(row_vals)

    lines = [title, "=" * (row_width + col_width * len(columns))]
    header = "".ljust(row_width) + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = [row.ljust(row_width)]
        for col in columns:
            value = values.get(row, {}).get(col)
            if value is None:
                cells.append("—".rjust(col_width))
                continue
            text = f"{value:.{precision}f}"
            key = col if best_axis == "column" else row
            if key in best and value == best[key]:
                text += "*"
            cells.append(text.rjust(col_width))
        lines.append("".join(cells))
    return "\n".join(lines)


def aggregate_to_values(
    aggregates: Mapping[str, AggregateResult], metric: str
) -> Dict[str, Dict[str, float]]:
    """Flatten ``{model: AggregateResult}`` into ``{model: {metric: mean}}``."""
    return {
        model: {metric: agg.mean(metric)}
        for model, agg in aggregates.items()
        if any(metric in run.metrics for run in agg.runs)
    }


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    precision: int = 4,
) -> str:
    """Render named series over a shared x-axis (the Fig. 2-4 data)."""
    names = list(series)
    width = max(12, max(len(n) for n in names) + 2) if names else 12
    lines = [title, "=" * (12 + width * len(names))]
    lines.append(x_label.ljust(12) + "".join(n.rjust(width) for n in names))
    lines.append("-" * (12 + width * len(names)))
    for i, x in enumerate(x_values):
        cells = [f"{x:g}".ljust(12)]
        for name in names:
            seq = series[name]
            cells.append(
                (f"{seq[i]:.{precision}f}" if i < len(seq) else "—").rjust(width)
            )
        lines.append("".join(cells))
    return "\n".join(lines)


def format_profile(
    title: str,
    layers: Sequence[Mapping[str, float]],
    top: int = 12,
    sort_key: str = "forward_seconds",
) -> str:
    """Render per-layer profile dicts as a fixed-width table.

    ``layers`` is the output of
    :meth:`repro.obs.ModuleProfiler.layer_profiles` (or the ``layers``
    field of a :class:`repro.obs.RunReport`): dicts with ``name``,
    ``calls``, ``forward_seconds``, ``backward_seconds``,
    ``grad_norm_mean``, and ``parameters`` keys.  Rows are sorted by
    ``sort_key`` descending and truncated to ``top``.
    """
    ordered = sorted(layers, key=lambda l: -float(l.get(sort_key, 0.0)))[:top]
    name_width = max([len(str(l.get("name", ""))) for l in ordered] + [10]) + 2
    header = (
        "layer".ljust(name_width)
        + "calls".rjust(7)
        + "fwd s".rjust(9)
        + "bwd s".rjust(9)
        + "grad|g|".rjust(10)
        + "params".rjust(10)
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for layer in ordered:
        lines.append(
            str(layer.get("name", "")).ljust(name_width)
            + f"{int(layer.get('calls', 0)):>7}"
            + f"{float(layer.get('forward_seconds', 0.0)):>9.3f}"
            + f"{float(layer.get('backward_seconds', 0.0)):>9.3f}"
            + f"{float(layer.get('grad_norm_mean', 0.0)):>10.3f}"
            + f"{int(layer.get('parameters', 0)):>10}"
        )
    if len(layers) > top:
        lines.append(f"... {len(layers) - top} more layers")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny unicode chart for a numeric sequence (docs and logs)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled: List[float] = list(values)[::step]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)
